"""The named verification suite behind ``python -m repro check``.

Each check pairs a scenario spec with an adversary enumeration and explores
every message schedule within a delay budget, for every enumerated
byzantine variant.  Two kinds of check:

* **safety checks** (``expect_violation=False``) — the verdict is *verified
  within bounds*: no reachable state within the delay budget and state cap
  violates agreement, unanimity, or condition-based one-step validity.
  The report says exactly which bounds applied (``complete`` is False when
  a cap was hit) — bounded exhaustion is reported as such, never as full
  verification.
* **boundary checks** (``expect_violation=True``) — the checker must
  *discover* a violation (the under-resilient pair below ``n > 5t``).
  Budgets deepen iteratively (0, 1, 2, …), so the report also states the
  *minimum* number of delayed messages an attack needs.  The found trace is
  greedily minimized, re-executed on the discrete-event simulator via
  :class:`~repro.sim.scheduler.ReplayScheduler`, and the replayed decision
  vector is required to match the checker's — closing the loop between the
  two execution engines.

Known limitation, stated rather than hidden: a delay budget of ``d``
covers every schedule in which at most ``d`` messages are held back past
later traffic (FIFO per destination otherwise, with all cross-destination
interleavings).  Full exhaustion (``budget=None``) is feasible for the
smallest configurations only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from .counterexample import (
    Counterexample,
    minimize,
    replay_matches,
    replay_on_simulator,
    run_schedule,
)
from .explorer import ExplorationResult, Explorer
from .scenario import (
    build_invariants,
    build_simulation,
    build_system,
    byzantine_variants,
    describe_variant,
    dex_scenario,
    idb_scenario,
)


@dataclass
class CheckSpec:
    """One named check: scenario × adversary enumeration × bounds."""

    name: str
    description: str
    base_spec: dict[str, Any]
    byzantine_pid: int | None
    expect_violation: bool = False
    delay_budget: int | None = 1
    max_states: int = 50_000
    #: State cap for the sub-target budgets of an iterative-deepening
    #: boundary check (kept lower than ``max_states`` so certifying the
    #: cheap budgets stays cheap; capped sweeps are reported incomplete).
    deepening_max_states: int = 60_000
    variant_budget: int | None = None
    smoke: bool = True  # include in --smoke runs (with tightened bounds)


@dataclass
class CheckReport:
    """Outcome of one check across all its byzantine variants."""

    name: str
    description: str
    config: str
    expect_violation: bool
    delay_budget: int | None
    states: int = 0
    transitions: int = 0
    merged: int = 0
    max_depth: int = 0
    complete: bool = True
    variants: list[dict[str, Any]] = field(default_factory=list)
    violation_found: bool = False
    #: For boundary checks: the smallest delay budget that produced the
    #: violation (how many messages the adversary's schedule holds back).
    violation_budget: int | None = None
    counterexample: Counterexample | None = None
    replay_verified: bool | None = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        if self.expect_violation:
            return self.violation_found and bool(self.replay_verified)
        return not self.violation_found

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "config": self.config,
            "ok": self.ok,
            "expect_violation": self.expect_violation,
            "violation_found": self.violation_found,
            "violation_budget": self.violation_budget,
            "replay_verified": self.replay_verified,
            "delay_budget": self.delay_budget,
            "states": self.states,
            "transitions": self.transitions,
            "merged": self.merged,
            "max_depth": self.max_depth,
            "complete": self.complete,
            "elapsed_s": round(self.elapsed, 3),
            "variants": self.variants,
            "counterexample": (
                None
                if self.counterexample is None
                else {
                    "invariant": self.counterexample.invariant,
                    "detail": self.counterexample.detail,
                    "schedule_length": len(self.counterexample.schedule),
                    "decisions": {
                        str(pid): decision
                        for pid, decision in self.counterexample.decisions.items()
                    },
                }
            ),
        }


def _variant_specs(spec: CheckSpec) -> list[tuple[str, dict[str, Any]]]:
    base = spec.base_spec
    if spec.byzantine_pid is None:
        if base.get("byzantine"):
            label = ", ".join(
                f"p{pid}:{describe_variant(variant)}"
                for pid, variant in sorted(base["byzantine"].items())
            )
            return [(label, base)]
        return [("fault-free", base)]
    return [
        (
            describe_variant(variant),
            {**base, "byzantine": {str(spec.byzantine_pid): variant}},
        )
        for variant in byzantine_variants(
            base, spec.byzantine_pid, spec.variant_budget
        )
    ]


def _explore(
    scenario: dict[str, Any],
    budget: int | None,
    max_states: int,
    order: str = "fifo",
) -> ExplorationResult:
    explorer = Explorer(
        build_system(scenario),
        build_invariants(scenario),
        delay_budget=budget,
        max_states=max_states,
        order=order,
    )
    return explorer.run()


def _absorb(
    report: CheckReport, label: str, budget: int | None, result: ExplorationResult
) -> None:
    report.states += result.states
    report.transitions += result.transitions
    report.merged += result.merged
    report.max_depth = max(report.max_depth, result.max_depth)
    report.complete = report.complete and result.complete
    report.variants.append(
        {
            "variant": label,
            "budget": budget,
            "states": result.states,
            "complete": result.complete,
            "ok": result.ok,
        }
    )


def _attach_counterexample(
    report: CheckReport, scenario: dict[str, Any], result: ExplorationResult
) -> None:
    """Minimize the violating trace, replay it on the simulator, compare."""
    violation = result.violations[0]
    counterexample = Counterexample(
        spec=scenario,
        schedule=list(result.trace or []),
        invariant=violation.invariant,
        detail=violation.detail,
        decisions={
            pid: list(decision) for pid, decision in violation.decisions.items()
        },
    )
    counterexample = minimize(counterexample, build_system, build_invariants)
    # Re-record the violating decision vector from the *minimized* trace so
    # the simulator comparison matches like for like.
    final = run_schedule(build_system(counterexample.spec), counterexample.schedule)
    if final is not None:
        counterexample.decisions = {
            pid: [value, kind.value, step]
            for pid, (value, kind, step) in final.correct_decisions().items()
        }
    report.counterexample = counterexample
    replay = replay_on_simulator(counterexample, build_simulation)
    report.replay_verified = replay_matches(counterexample, replay)


def run_check(spec: CheckSpec) -> CheckReport:
    """Explore every byzantine variant of one check and aggregate.

    Safety checks sweep all variants at the full delay budget.  Boundary
    checks deepen the budget iteratively so the reported counterexample
    uses the minimum number of delayed messages.
    """
    base = spec.base_spec
    report = CheckReport(
        name=spec.name,
        description=spec.description,
        config=f"n={base['n']} t={base['t']} kind={base['kind']}",
        expect_violation=spec.expect_violation,
        delay_budget=spec.delay_budget,
    )
    started = time.perf_counter()
    variant_specs = _variant_specs(spec)
    if not spec.expect_violation:
        for label, scenario in variant_specs:
            result = _explore(scenario, spec.delay_budget, spec.max_states)
            _absorb(report, label, spec.delay_budget, result)
            if not result.ok:
                report.violation_found = True
                _attach_counterexample(report, scenario, result)
                break
    else:
        top = spec.delay_budget if spec.delay_budget is not None else 8
        for budget in range(top + 1):
            # Sub-target budgets run under the (smaller) deepening cap —
            # they exist to witness that the violation *needs* the delays,
            # so a capped clean sweep is acceptable and reported as such.
            max_states = (
                spec.max_states if budget == top else spec.deepening_max_states
            )
            for label, scenario in variant_specs:
                result = _explore(scenario, budget, max_states, order="adversarial")
                _absorb(report, label, budget, result)
                if not result.ok:
                    report.violation_found = True
                    report.violation_budget = budget
                    _attach_counterexample(report, scenario, result)
                    break
            if report.violation_found:
                break
    report.elapsed = time.perf_counter() - started
    return report


#: The adversary that breaks the under-resilient margins: equivocate the
#: minority value towards everyone except one majority-value process, which
#: is fed the majority value so it fast-decides on a gap the others never
#: see.  Boundary checks pin it (the *schedule* — three precisely placed
#: delayed messages — is what the checker has to discover); the safety
#: checks keep the full adversary enumeration.
def _splitter(correct_peers: list[int]) -> dict[str, Any]:
    return {
        "kind": "two-faced",
        "value_a": 2,
        "value_b": 1,
        "group_a": correct_peers,
    }


def suite_checks(smoke: bool = False) -> list[CheckSpec]:
    """The named checks, with bounds tightened for ``--smoke``."""
    checks = [
        CheckSpec(
            name="idb-n5",
            description=(
                "Identical Broadcast consistency at n=5,t=1 against silence, "
                "partial crashes and every two-faced equivocation"
            ),
            base_spec=idb_scenario(5, 1, [1, 1, 1, 2, 2]),
            byzantine_pid=4,
            delay_budget=1,
            max_states=40_000 if not smoke else 3_000,
            variant_budget=None if not smoke else 4,
        ),
        CheckSpec(
            name="dex-freq-n7",
            description=(
                "DEX agreement + condition-based one-step validity with the "
                "frequency pair at n=7,t=1 (oracle-IDB abstraction)"
            ),
            base_spec=dex_scenario(7, 1, [1, 1, 1, 1, 1, 2, 2]),
            byzantine_pid=6,
            delay_budget=0,
            max_states=40_000 if not smoke else 3_000,
            variant_budget=None if not smoke else 4,
        ),
        CheckSpec(
            name="dex-prv-n7",
            description=(
                "DEX agreement + one-step validity with the privileged pair "
                "(m=1) at n=7,t=1 (oracle-IDB abstraction)"
            ),
            base_spec=dex_scenario(
                7, 1, [1, 1, 1, 1, 2, 2, 2], pair={"kind": "prv", "privileged": 1}
            ),
            byzantine_pid=6,
            delay_budget=0,
            max_states=40_000,
            variant_budget=None,
            smoke=False,
        ),
        CheckSpec(
            name="dex-freq-n5-below-bound",
            description=(
                "The shipped frequency margins stay safe even below n > 5t "
                "(n=5,t=1, resilience check disabled): full margins tolerate "
                "t=1 equivocation"
            ),
            base_spec=dex_scenario(
                5, 1, [1, 1, 1, 2, 2], enforce_resilience=False
            ),
            byzantine_pid=4,
            delay_budget=0,
            max_states=40_000,
            variant_budget=None,
            smoke=False,
        ),
        CheckSpec(
            name="dex-under-resilient-n4",
            description=(
                "Resilience boundary: halved (crash-grade) margins at n=4,t=1 "
                "lose agreement — the checker must find the attack schedule"
            ),
            base_spec=dex_scenario(
                4,
                1,
                [1, 1, 2, 2],
                pair={"kind": "under-freq"},
                byzantine={3: _splitter([1, 2])},
                enforce_resilience=False,
            ),
            byzantine_pid=None,
            expect_violation=True,
            delay_budget=3,
            max_states=300_000,
            deepening_max_states=60_000,
            smoke=False,
        ),
        CheckSpec(
            name="dex-under-resilient-n5",
            description=(
                "Resilience boundary at the paper's margin: n=5,t=1 (n = 5t) "
                "with halved margins — discovered agreement violation"
            ),
            base_spec=dex_scenario(
                5,
                1,
                [1, 1, 1, 2, 2],
                pair={"kind": "under-freq"},
                byzantine={4: _splitter([1, 2, 3])},
                enforce_resilience=False,
            ),
            byzantine_pid=None,
            expect_violation=True,
            delay_budget=3,
            max_states=1_500_000,
            deepening_max_states=60_000,
            smoke=False,
        ),
    ]
    if smoke:
        checks = [check for check in checks if check.smoke]
    return checks


def run_suite(smoke: bool = False) -> list[CheckReport]:
    """Run the (smoke subset of the) verification suite."""
    return [run_check(check) for check in suite_checks(smoke=smoke)]
