"""Canonical state fingerprinting.

Exhaustive exploration re-reaches the same global state along many
schedules (independent deliveries commute); fingerprinting merges those
branches.  Two requirements shape the implementation:

* **canonical** — the digest must be a pure function of state *content*:
  dicts are folded in sorted key order, sets as sorted multisets, so two
  states that differ only in container insertion history hash identically;
* **process-stable** — Python's builtin ``hash`` is salted per interpreter
  (``PYTHONHASHSEED``), so digests are computed with :mod:`hashlib`
  (blake2b) over a canonical byte stream instead.  Fingerprints printed in
  one run mean the same thing in the next.

The feed walks arbitrary object graphs: dataclasses, ``__dict__``/
``__slots__`` objects (protocol instances, services, ``ViewStats``), enums,
and callables (byzantine ``group_of`` hooks — folded as qualname plus
closure contents, so two behaviors differing only in a captured parameter
fingerprint differently).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any

#: Attribute names never folded into a protocol fingerprint (immutable
#: identity, mirrored from Protocol._SNAPSHOT_EXCLUDE; config is shared and
#: constant across the exploration).
_SKIP_ATTRS = frozenset({"config"})


def _slot_names(cls: type) -> list[str]:
    names: list[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(s for s in slots if s not in ("__dict__", "__weakref__"))
    return names


def _attr_items(obj: Any) -> list[tuple[str, Any]]:
    items: dict[str, Any] = {}
    for name in _slot_names(type(obj)):
        if name in _SKIP_ATTRS:
            continue
        try:
            items[name] = getattr(obj, name)
        except AttributeError:
            continue
    if hasattr(obj, "__dict__"):
        for name, value in obj.__dict__.items():
            if name not in _SKIP_ATTRS:
                items[name] = value
    return sorted(items.items())


class _Feeder:
    """Streams a canonical byte encoding of an object graph into a hash."""

    def __init__(self, hasher) -> None:
        self._h = hasher
        self._stack: set[int] = set()  # true-cycle guard (ancestors only)

    def _tag(self, tag: str) -> None:
        self._h.update(tag.encode())
        self._h.update(b"\x00")

    def _text(self, text: str) -> None:
        data = text.encode("utf-8", "surrogatepass")
        self._h.update(str(len(data)).encode())
        self._h.update(b":")
        self._h.update(data)

    def feed(self, obj: Any) -> None:
        if obj is None or obj is True or obj is False:
            self._tag(repr(obj))
            return
        kind = type(obj)
        if kind is int or kind is float:
            self._tag("num")
            self._text(repr(obj))
            return
        if kind is str:
            self._tag("str")
            self._text(obj)
            return
        if kind is bytes:
            self._tag("bytes")
            self._text(obj.hex())
            return
        oid = id(obj)
        if oid in self._stack:
            self._tag("@cycle")
            return
        self._stack.add(oid)
        try:
            self._feed_composite(obj, kind)
        finally:
            self._stack.discard(oid)

    def _feed_composite(self, obj: Any, kind: type) -> None:
        if kind is tuple or kind is list:
            self._tag("seq")
            for item in obj:
                self.feed(item)
            self._tag("/seq")
        elif kind is dict:
            self._tag("map")
            for key, value in sorted(obj.items(), key=_sort_key):
                self.feed(key)
                self.feed(value)
            self._tag("/map")
        elif kind is set or kind is frozenset:
            self._tag("set")
            for item in sorted(obj, key=_item_sort_key):
                self.feed(item)
            self._tag("/set")
        elif isinstance(obj, enum.Enum):
            self._tag("enum")
            self._text(type(obj).__name__)
            self.feed(obj.value)
        elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            self._tag("dc")
            self._text(type(obj).__name__)
            for field in dataclasses.fields(obj):
                self._text(field.name)
                self.feed(getattr(obj, field.name))
            self._tag("/dc")
        elif callable(obj) and hasattr(obj, "__code__"):
            # Behaviors carry hooks like ``group_of``; fold the identity of
            # the code plus whatever the closure captured, never the object
            # address (reprs of functions embed ids).
            self._tag("fn")
            self._text(getattr(obj, "__qualname__", obj.__name__))
            for cell in obj.__closure__ or ():
                self.feed(cell.cell_contents)
            self._tag("/fn")
        elif hasattr(obj, "__dict__") or _slot_names(kind):
            self._tag("obj")
            self._text(kind.__name__)
            for name, value in _attr_items(obj):
                self._text(name)
                self.feed(value)
            self._tag("/obj")
        else:
            self._tag("repr")
            self._text(repr(obj))


def _sort_key(item: tuple[Any, Any]) -> tuple[str, str]:
    key = item[0]
    return (type(key).__name__, repr(key))


def _item_sort_key(item: Any) -> tuple[str, str]:
    return (type(item).__name__, repr(item))


def fingerprint(*parts: Any) -> str:
    """Canonical blake2b digest of the given object graph(s)."""
    hasher = hashlib.blake2b(digest_size=16)
    feeder = _Feeder(hasher)
    for part in parts:
        feeder.feed(part)
    return hasher.hexdigest()
