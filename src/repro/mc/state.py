"""The model checker's execution state: protocols × pending messages.

:class:`McSystem` interprets effects with exactly the semantics of the
discrete-event simulator (:class:`repro.sim.runner.Simulation`) minus time:
where the simulator orders deliveries by sampled latency, the checker keeps
every undelivered message in a *pending multiset* and lets the explorer
pick which one to deliver next.  Everything else matches —

* ``on_start`` runs once per process in pid order (start effects commute:
  the simulator also executes all starts before any delivery);
* ``Send``/``Broadcast`` push pending messages at causal depth + 1
  (broadcasts include the self-copy, as on the wire);
* ``ServiceCall`` is synchronous (the simulator's services compute replies
  at call time too); replies become pending messages from
  ``SERVICE_SENDER``, wrapped per ``reply_path`` exactly like the runner;
* decisions are first-only per process and record the causal step.

so that a schedule found here replays verbatim on the simulator
(:mod:`repro.mc.counterexample`).

Branching uses :meth:`McSystem.snapshot` / :meth:`McSystem.restore` built
on the per-protocol snapshot contract, and :meth:`McSystem.fingerprint` for
merging converging schedules.
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..engine.events import (
    DecideEvent,
    DeliverEvent,
    EventSink,
    LogEvent,
    OutputEvent,
    SendEvent,
    ServiceEvent,
)
from ..engine.interpreter import ExecutionPorts, dispatch_service_call, interpret
from ..errors import SimulationError
from ..runtime.effects import SERVICE_SENDER, Deliver, Effect, Log, ServiceCall
from ..runtime.protocol import Protocol, guarded
from ..runtime.services import Service, ServiceReply
from ..types import ProcessId, SystemConfig
from .fingerprint import fingerprint


@dataclass(frozen=True, slots=True)
class McMessage:
    """One undelivered message.

    ``uid`` is the global send counter — unique and deterministic within a
    schedule, used by the explorer to address pending messages.  It is *not*
    part of the state fingerprint (two schedules reaching the same contents
    number their messages differently) nor of serialized counterexamples
    (which match messages by ``(src, dst, payload key)`` instead).
    """

    uid: int
    src: ProcessId
    dst: ProcessId
    payload: Any
    depth: int


class McSystem(ExecutionPorts):
    """A branchable global state of one protocol composition.

    Effect semantics come from :mod:`repro.engine.interpreter` — this class
    implements :class:`~repro.engine.interpreter.ExecutionPorts` with the
    pending-multiset scheduling described above.

    Args:
        config: system parameters.
        protocols: one protocol per process id (byzantine behaviors
            included, exactly as for the simulator).
        services: trusted services by name; service calls execute
            synchronously and their state is captured by snapshots.
        faulty: byzantine process ids (invariants quantify over the rest).
        payload_key: canonical payload encoding used in schedule records
            (default ``repr``; must match the replay scheduler's).
        event_sink: optional structured-event sink; event ``time`` is the
            delivery index.  Deliberately *not* captured by snapshots: a
            sink observes one schedule linearly (e.g. counterexample
            replay), not the branching exploration.
    """

    def __init__(
        self,
        config: SystemConfig,
        protocols: Mapping[ProcessId, Protocol],
        services: Mapping[str, Service] | None = None,
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        payload_key: Callable[[Any], str] = repr,
        event_sink: EventSink | None = None,
    ) -> None:
        if set(protocols) != set(config.processes):
            raise SimulationError(
                "protocols must cover exactly the process ids of the config"
            )
        self.config = config
        self.protocols = dict(protocols)
        self.services = dict(services or {})
        self.faulty = frozenset(faulty)
        self.payload_key = payload_key
        self.correct = [p for p in config.processes if p not in self.faulty]
        self.pending: dict[int, McMessage] = {}
        #: pid -> (value, DecisionKind, step); first decision only.
        self.decisions: dict[ProcessId, tuple[Any, Any, int]] = {}
        #: pid -> [(tag, sender, value)] top-level Deliver upcalls.
        self.outputs: dict[ProcessId, list[tuple[str, ProcessId, Any]]] = {
            pid: [] for pid in config.processes
        }
        self._events = event_sink
        self.counter = 0
        self.deliveries = 0
        #: uid -> names of services the delivery of uid called (DPOR
        #: dependence data; observed at execution, not part of snapshots —
        #: see Explorer for the soundness argument).
        self.footprints: dict[int, frozenset[str]] = {}
        self._footprint: set[str] = set()
        self._started = False
        self._services_picklable: bool | None = None
        # Incremental fingerprint caches: a delivery mutates exactly one
        # protocol (and the services it calls), so per-process digests are
        # invalidated selectively instead of re-walking every object graph.
        self._proto_fp: dict[ProcessId, str | None] = {
            pid: None for pid in config.processes
        }
        self._services_fp: str | None = None

    # -- execution -----------------------------------------------------------------

    def start(self) -> None:
        """Run every process's ``on_start`` (pid order), once."""
        if self._started:
            raise SimulationError("McSystem.start() called twice")
        self._started = True
        for pid in self.config.processes:
            self._footprint = set()
            self._apply(pid, self.protocols[pid].on_start(), depth=0)

    def deliver(self, uid: int) -> frozenset[str]:
        """Deliver pending message ``uid``; returns its service footprint."""
        message = self.pending.pop(uid)
        self._footprint = set()
        if self._events is not None:
            self._events.emit(
                DeliverEvent(
                    float(self.deliveries),
                    message.dst,
                    message.src,
                    message.payload,
                    message.depth,
                )
            )
        effects = guarded(self.protocols[message.dst], message.src, message.payload)
        interpret(self, message.dst, effects, message.depth)
        self.deliveries += 1
        footprint = frozenset(self._footprint)
        self.footprints[uid] = footprint
        self._proto_fp[message.dst] = None
        if footprint:
            self._services_fp = None
        return footprint

    def run_fifo(self, max_deliveries: int = 200_000) -> None:
        """Execute the FIFO baseline schedule: deliver the oldest pending
        message until every correct process decided (or nothing is left).

        This is the single-schedule entry point behind ``engine="mc"`` —
        the model checker's state machine driven like a runner, useful for
        cross-engine equivalence checks without launching an exploration.
        """
        if not self._started:
            self.start()
        delivered = 0
        while self.pending and not self.all_correct_decided():
            if delivered >= max_deliveries:
                raise SimulationError(
                    f"exceeded max_deliveries={max_deliveries}; likely livelock"
                )
            self.deliver(min(self.pending))
            delivered += 1

    def _apply(self, pid: ProcessId, effects: list[Effect], depth: int) -> None:
        """Compatibility shim: route through the engine interpreter."""
        interpret(self, pid, effects, depth)

    # -- ExecutionPorts (broadcast inherits the per-destination default) --------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any, depth: int) -> None:
        uid = self.counter
        self.counter += 1
        self.pending[uid] = McMessage(uid, src, dst, payload, depth)
        if self._events is not None:
            self._events.emit(SendEvent(float(self.deliveries), src, dst, payload, depth))

    def decide(self, pid: ProcessId, value: Any, kind: Any, depth: int) -> None:
        if pid not in self.decisions:
            self.decisions[pid] = (value, kind, depth)
            if self._events is not None:
                self._events.emit(
                    DecideEvent(float(self.deliveries), pid, value, kind, depth)
                )

    def output(self, pid: ProcessId, effect: Deliver, depth: int) -> None:
        self.outputs[pid].append((effect.tag, effect.sender, effect.value))
        if self._events is not None:
            self._events.emit(
                OutputEvent(
                    float(self.deliveries), pid, effect.tag, effect.sender, effect.value
                )
            )

    def service_call(self, pid: ProcessId, call: ServiceCall, depth: int) -> None:
        self._footprint.add(call.service)
        if self._events is not None:
            self._events.emit(
                ServiceEvent(float(self.deliveries), pid, call.service, call.payload)
            )
        dispatch_service_call(self.services, pid, call, depth, 0.0, self._deliver_reply)

    def log_record(self, pid: ProcessId, record: Log, depth: int) -> None:
        if self._events is not None:
            self._events.emit(
                LogEvent(float(self.deliveries), pid, record.event, record.data)
            )

    def _deliver_reply(self, reply: ServiceReply, payload: Any) -> None:
        self.send(SERVICE_SENDER, reply.dst, payload, reply.depth)

    def _push(self, src: ProcessId, dst: ProcessId, payload: Any, depth: int) -> None:
        """Compatibility alias for the ``send`` port."""
        self.send(src, dst, payload, depth)

    # -- observability --------------------------------------------------------------

    def all_correct_decided(self) -> bool:
        return all(pid in self.decisions for pid in self.correct)

    def correct_decisions(self) -> dict[ProcessId, tuple[Any, Any, int]]:
        return {p: d for p, d in self.decisions.items() if p not in self.faulty}

    def delivery_overtakes(self) -> list[tuple[int, tuple[int, ...]]]:
        """Pending uids with the older same-destination uids each overtakes.

        Delivering a message *overtakes* every older pending message bound
        for the same destination.  The explorer's delay budget bounds the
        number of distinct messages overtaken along a schedule, so the
        per-candidate data here is the overtaken *set*, not a count: a
        message that has already been overtaken once is free to overtake
        again.  The oldest pending message of every destination overtakes
        nothing, so a budget never deadlocks exploration — the FIFO
        baseline always remains affordable.
        """
        older: dict[ProcessId, list[int]] = {}
        out: list[tuple[int, tuple[int, ...]]] = []
        for uid in sorted(self.pending):
            dst = self.pending[uid].dst
            seen = older.setdefault(dst, [])
            out.append((uid, tuple(seen)))
            seen.append(uid)
        return out

    def message_key(self, uid: int) -> tuple[ProcessId, ProcessId, int, str]:
        """Content identity of a pending message (uid-independent).

        Used wherever uid sets from *different* schedules must be compared
        (the explorer's visited-state dominance check): two schedules
        reaching the same state may number the same message differently,
        but its content key is schedule-invariant.
        """
        message = self.pending[uid]
        return (
            message.src,
            message.dst,
            message.depth,
            self.payload_key(message.payload),
        )

    def schedule_record(self, uid: int) -> tuple[ProcessId, ProcessId, str]:
        """The serializable ``(src, dst, payload key)`` form of a pending
        message — the unit of counterexample traces."""
        message = self.pending[uid]
        return (message.src, message.dst, self.payload_key(message.payload))

    # -- branching ------------------------------------------------------------------

    def _services_token(self) -> Any:
        """Pickle the services when possible (same trade as
        :meth:`~repro.runtime.protocol.Protocol.snapshot`), else deepcopy."""
        if self._services_picklable is not False:
            try:
                blob = pickle.dumps(self.services, pickle.HIGHEST_PROTOCOL)
            except Exception:
                self._services_picklable = False
            else:
                self._services_picklable = True
                return blob
        return copy.deepcopy(self.services)

    def snapshot(self) -> Any:
        """Capture the full branchable state as a reusable token."""
        return (
            {pid: proto.snapshot() for pid, proto in self.protocols.items()},
            self._services_token(),
            dict(self.pending),
            dict(self.decisions),
            {pid: list(out) for pid, out in self.outputs.items()},
            self.counter,
            self.deliveries,
            dict(self._proto_fp),
            self._services_fp,
        )

    def restore(self, token: Any) -> None:
        (
            protocols,
            services,
            pending,
            decisions,
            outputs,
            counter,
            deliveries,
            proto_fp,
            services_fp,
        ) = token
        for pid, state in protocols.items():
            self.protocols[pid].restore(state)
        self.services = (
            pickle.loads(services)
            if isinstance(services, bytes)
            else copy.deepcopy(services)
        )
        self.pending = dict(pending)
        self.decisions = dict(decisions)
        self.outputs = {pid: list(out) for pid, out in outputs.items()}
        self.counter = counter
        self.deliveries = deliveries
        self._proto_fp = dict(proto_fp)
        self._services_fp = services_fp

    def fingerprint(self) -> str:
        """Canonical digest of the global state (uid-independent).

        Per-process digests are cached between deliveries (a delivery
        mutates one protocol only), which turns the dominant cost of state
        matching from O(system) into O(one process) per step.
        """
        for pid, cached in self._proto_fp.items():
            if cached is None:
                self._proto_fp[pid] = fingerprint(self.protocols[pid])
        if self._services_fp is None:
            self._services_fp = fingerprint(self.services)
        key = self.payload_key
        pending = sorted(
            (m.src, m.dst, m.depth, key(m.payload)) for m in self.pending.values()
        )
        return fingerprint(
            self._proto_fp,
            self._services_fp,
            pending,
            self.decisions,
            self.outputs,
        )
