"""Byzantine adversaries: behavior framework and concrete attack library."""

from .adversary import (
    ByzantineBehavior,
    CrashBehavior,
    MutatingBehavior,
    Mutator,
    SilentBehavior,
    TwoFacedBehavior,
    expand_broadcasts,
)
from .targeted import GapCollapser, SpoilerBehavior
from .behaviors import (
    EquivocatorBehavior,
    RandomGarbageBehavior,
    compose_mutators,
    dropping_mutator,
    equivocating_mutator,
    rewrite_value,
    split_mutator,
)

__all__ = [
    "ByzantineBehavior",
    "SilentBehavior",
    "CrashBehavior",
    "MutatingBehavior",
    "TwoFacedBehavior",
    "Mutator",
    "expand_broadcasts",
    "EquivocatorBehavior",
    "RandomGarbageBehavior",
    "rewrite_value",
    "equivocating_mutator",
    "split_mutator",
    "dropping_mutator",
    "compose_mutators",
    "SpoilerBehavior",
    "GapCollapser",
]
