"""Concrete adversaries and payload mutators.

The mutators in this module understand the library's wire conventions:
protocol payloads are frozen dataclasses, most of which carry a ``value``
field, and composite-protocol traffic travels inside
:class:`~repro.runtime.composite.Envelope` wrappers which mutators descend
through.  That makes one mutator applicable to every layer of a composite
protocol (plain proposals, IDB init messages, …) at once.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Callable

from ..runtime.composite import Envelope
from ..runtime.effects import Effect, Send
from ..runtime.protocol import Protocol
from ..types import ProcessId, SystemConfig, Value
from .adversary import ByzantineBehavior, Mutator, MutatingBehavior


def rewrite_value(payload: Any, value: Value) -> Any:
    """Return ``payload`` with its ``value`` field replaced, descending
    through envelopes.  Payloads without a ``value`` field pass unchanged."""
    if isinstance(payload, Envelope):
        return Envelope(payload.component, rewrite_value(payload.payload, value))
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        names = {f.name for f in dataclasses.fields(payload)}
        if "value" in names:
            return dataclasses.replace(payload, value=value)
    return payload


def equivocating_mutator(value_for: Callable[[ProcessId], Value]) -> Mutator:
    """A mutator that tells each destination a (possibly) different value.

    ``value_for(dst)`` chooses the value shown to ``dst``; the classic
    Figure 2 split is ``lambda dst: a if dst % 2 == 0 else b``.
    """

    def mutate(dst: ProcessId, payload: Any) -> Any:
        return rewrite_value(payload, value_for(dst))

    return mutate


def split_mutator(value_a: Value, value_b: Value) -> Mutator:
    """Equivocate by destination parity: even ids see ``value_a``, odd see
    ``value_b`` — the exact Figure 2 scenario generalised to all layers."""
    return equivocating_mutator(lambda dst: value_a if dst % 2 == 0 else value_b)


def dropping_mutator(drop_to: set[ProcessId]) -> Mutator:
    """Send honestly, but never to processes in ``drop_to`` (selective
    omission — a Byzantine-only capability on reliable links)."""

    def mutate(dst: ProcessId, payload: Any) -> Any:
        return None if dst in drop_to else payload

    return mutate


def compose_mutators(*mutators: Mutator) -> Mutator:
    """Apply mutators left to right; a ``None`` short-circuits to a drop."""

    def mutate(dst: ProcessId, payload: Any) -> Any:
        for m in mutators:
            if payload is None:
                return None
            payload = m(dst, payload)
        return payload

    return mutate


class EquivocatorBehavior(MutatingBehavior):
    """Honest execution of ``inner`` with per-destination value rewriting."""

    def __init__(self, inner: Protocol, value_for: Callable[[ProcessId], Value]) -> None:
        super().__init__(inner, equivocating_mutator(value_for))


class RandomGarbageBehavior(ByzantineBehavior):
    """Spray structurally random payloads at random processes.

    Exercises the robustness requirement that malformed payloads are treated
    as silence (:func:`repro.runtime.protocol.guarded`): no correct process
    may crash or decide wrongly because of garbage.

    Args:
        templates: example payloads whose ``value`` field gets randomised;
            garbage stays wire-shaped enough to reach real handlers.
        values: pool of values to inject.
        fanout: messages sent at start and per received message.
        seed: behavior-local PRNG seed.
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        templates: list[Any],
        values: list[Value],
        fanout: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__(process_id, config)
        if not templates or not values:
            raise ValueError("need at least one template and one value")
        self.templates = templates
        self.values = values
        self.fanout = fanout
        self.rng = random.Random(seed)

    def _spray(self) -> list[Effect]:
        out: list[Effect] = []
        for _ in range(self.fanout):
            dst = self.rng.randrange(self.config.n)
            template = self.rng.choice(self.templates)
            payload = rewrite_value(template, self.rng.choice(self.values))
            out.append(Send(dst, payload))
        return out

    def on_start(self) -> list[Effect]:
        return self._spray()

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if self.rng.random() < 0.5:
            return self._spray()
        return []
