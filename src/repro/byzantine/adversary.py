"""Byzantine behavior framework.

A Byzantine process "can behave arbitrarily, … even not follow the deployed
algorithm" (§2.1).  In this library a Byzantine process is simply a
:class:`~repro.runtime.protocol.Protocol` whose handlers do whatever the
experiment needs — the runtimes give it no extra powers and impose no
constraints (beyond sender authentication, which the model guarantees).

Most useful adversaries are built by *wrapping* the honest protocol and
perturbing its output: dropping messages mid-broadcast (crash), rewriting
values per destination (equivocation), or running two honest instances and
showing a different face to each half of the system.  The wrappers are
:class:`~repro.engine.interpreter.EffectRewriter` subclasses — they state
only their deviation from honest pass-through as ``rewrite_*`` visitors,
and the engine's single dispatch path does the effect-type analysis.  With
:attr:`~repro.engine.interpreter.EffectRewriter.rewriter_expands_broadcasts`
every ``Broadcast`` is expanded into per-destination ``Send`` effects
first, so perturbations can differ per receiver.
"""

from __future__ import annotations

from typing import Any, Callable

from ..engine.interpreter import CensoringRewriter, expand_broadcasts
from ..runtime.effects import Effect, Log, Send, ServiceCall
from ..runtime.protocol import Protocol, guarded
from ..types import ProcessId

__all__ = [
    "expand_broadcasts",
    "Mutator",
    "ByzantineBehavior",
    "SilentBehavior",
    "CrashBehavior",
    "MutatingBehavior",
    "TwoFacedBehavior",
]

#: Rewrites an outgoing payload for one destination; ``None`` drops it.
Mutator = Callable[[ProcessId, Any], Any]


class ByzantineBehavior(Protocol):
    """Marker base class for faulty-process behaviors."""

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        return []


class SilentBehavior(ByzantineBehavior):
    """The weakest fault: the process never sends anything (a full crash
    before the run, equivalently a crash failure at time zero)."""


class CrashBehavior(ByzantineBehavior, CensoringRewriter):
    """Run the honest protocol but crash after sending ``budget`` messages.

    A crash mid-broadcast (budget smaller than ``n``) leaves the system in
    the classic asymmetric state where only a prefix of processes heard the
    proposal — the situation crash-tolerant one-step algorithms must ride
    out.

    Args:
        inner: the honest protocol instance to run until the crash.
        budget: total number of point-to-point messages allowed out.
    """

    rewriter_expands_broadcasts = True

    def __init__(self, inner: Protocol, budget: int) -> None:
        super().__init__(inner.process_id, inner.config)
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.inner = inner
        self.remaining = budget
        self.crashed = False
        self._rewrite_stopped = False

    def rewrite_send(self, effect: Send) -> Effect:
        if self.remaining <= 0:
            self.crashed = True
            self.stop_rewrite()
            return self.log("crashed")
        self.remaining -= 1
        return effect

    def on_start(self) -> list[Effect]:
        return self.rewrite_effects(self.inner.on_start())

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if self.crashed:
            return []
        return self.rewrite_effects(guarded(self.inner, sender, payload))


class MutatingBehavior(ByzantineBehavior, CensoringRewriter):
    """Run the honest protocol but rewrite each outgoing message.

    The ``mutator`` sees ``(dst, payload)`` and returns the payload to send
    (possibly different per destination — equivocation) or ``None`` to drop
    it.  Service calls pass through unmodified: a Byzantine process may use
    the underlying consensus with arbitrary proposals, which the primitive
    tolerates by assumption.
    """

    rewriter_expands_broadcasts = True

    def __init__(self, inner: Protocol, mutator: Mutator) -> None:
        super().__init__(inner.process_id, inner.config)
        self.inner = inner
        self.mutator = mutator
        self._rewrite_stopped = False

    def rewrite_send(self, effect: Send) -> Effect | None:
        mutated = self.mutator(effect.dst, effect.payload)
        if mutated is None:
            return None
        return Send(effect.dst, mutated)

    def on_start(self) -> list[Effect]:
        return self.rewrite_effects(self.inner.on_start())

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        return self.rewrite_effects(guarded(self.inner, sender, payload))


class TwoFacedBehavior(ByzantineBehavior, CensoringRewriter):
    """Run two honest instances and show a different one to each group.

    This is the strongest *consistent* equivocation: each half of the
    system observes a perfectly protocol-conformant process, but the two
    halves observe different proposals.  It is the scenario of Figure 2
    (process ``P3`` sending different messages to ``P1`` and ``P4``) played
    at every protocol layer simultaneously.

    Args:
        face_a: honest instance shown to group A.
        face_b: honest instance shown to group B.
        group_of: maps a destination to ``"a"`` or ``"b"``; default is id
            parity.
    """

    rewriter_expands_broadcasts = True

    def __init__(
        self,
        face_a: Protocol,
        face_b: Protocol,
        group_of: Callable[[ProcessId], str] | None = None,
    ) -> None:
        super().__init__(face_a.process_id, face_a.config)
        self.face_a = face_a
        self.face_b = face_b
        self.group_of = group_of or (lambda dst: "a" if dst % 2 == 0 else "b")
        self._face = "a"
        self._rewrite_stopped = False

    def _filter(self, effects: list[Effect], face: str) -> list[Effect]:
        self._face = face
        return self.rewrite_effects(effects)

    def rewrite_send(self, effect: Send) -> Effect | None:
        return effect if self.group_of(effect.dst) == self._face else None

    def rewrite_service_call(self, effect: ServiceCall) -> Effect | None:
        return effect if self._face == "a" else None  # one service identity

    def rewrite_log(self, effect: Log) -> None:
        return None

    def on_start(self) -> list[Effect]:
        return self._filter(self.face_a.on_start(), "a") + self._filter(
            self.face_b.on_start(), "b"
        )

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        return self._filter(guarded(self.face_a, sender, payload), "a") + self._filter(
            guarded(self.face_b, sender, payload), "b"
        )
