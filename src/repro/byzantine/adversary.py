"""Byzantine behavior framework.

A Byzantine process "can behave arbitrarily, … even not follow the deployed
algorithm" (§2.1).  In this library a Byzantine process is simply a
:class:`~repro.runtime.protocol.Protocol` whose handlers do whatever the
experiment needs — the runtimes give it no extra powers and impose no
constraints (beyond sender authentication, which the model guarantees).

Most useful adversaries are built by *wrapping* the honest protocol and
perturbing its output: dropping messages mid-broadcast (crash), rewriting
values per destination (equivocation), or running two honest instances and
showing a different face to each half of the system.  The wrappers below
expand every ``Broadcast`` into per-destination ``Send`` effects first, so
perturbations can differ per receiver.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..runtime.effects import Broadcast, Decide, Deliver, Effect, Log, Send, ServiceCall
from ..runtime.protocol import Protocol, guarded
from ..types import ProcessId, SystemConfig

#: Rewrites an outgoing payload for one destination; ``None`` drops it.
Mutator = Callable[[ProcessId, Any], Any]


def expand_broadcasts(effects: Iterable[Effect], config: SystemConfig) -> list[Effect]:
    """Replace every ``Broadcast`` with one ``Send`` per process (in id order)."""
    out: list[Effect] = []
    for effect in effects:
        if isinstance(effect, Broadcast):
            out.extend(Send(dst, effect.payload) for dst in config.processes)
        else:
            out.append(effect)
    return out


class ByzantineBehavior(Protocol):
    """Marker base class for faulty-process behaviors."""

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        return []


class SilentBehavior(ByzantineBehavior):
    """The weakest fault: the process never sends anything (a full crash
    before the run, equivalently a crash failure at time zero)."""


class CrashBehavior(ByzantineBehavior):
    """Run the honest protocol but crash after sending ``budget`` messages.

    A crash mid-broadcast (budget smaller than ``n``) leaves the system in
    the classic asymmetric state where only a prefix of processes heard the
    proposal — the situation crash-tolerant one-step algorithms must ride
    out.

    Args:
        inner: the honest protocol instance to run until the crash.
        budget: total number of point-to-point messages allowed out.
    """

    def __init__(self, inner: Protocol, budget: int) -> None:
        super().__init__(inner.process_id, inner.config)
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.inner = inner
        self.remaining = budget
        self.crashed = False

    def _filter(self, effects: list[Effect]) -> list[Effect]:
        out: list[Effect] = []
        for effect in expand_broadcasts(effects, self.config):
            if self.crashed:
                break
            if isinstance(effect, Send):
                if self.remaining <= 0:
                    self.crashed = True
                    out.append(self.log("crashed"))
                    break
                self.remaining -= 1
                out.append(effect)
            elif isinstance(effect, (Decide, Deliver)):
                continue  # a faulty process's outputs are meaningless
            else:
                out.append(effect)
        return out

    def on_start(self) -> list[Effect]:
        return self._filter(self.inner.on_start())

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if self.crashed:
            return []
        return self._filter(guarded(self.inner, sender, payload))


class MutatingBehavior(ByzantineBehavior):
    """Run the honest protocol but rewrite each outgoing message.

    The ``mutator`` sees ``(dst, payload)`` and returns the payload to send
    (possibly different per destination — equivocation) or ``None`` to drop
    it.  Service calls pass through unmodified: a Byzantine process may use
    the underlying consensus with arbitrary proposals, which the primitive
    tolerates by assumption.
    """

    def __init__(self, inner: Protocol, mutator: Mutator) -> None:
        super().__init__(inner.process_id, inner.config)
        self.inner = inner
        self.mutator = mutator

    def _filter(self, effects: list[Effect]) -> list[Effect]:
        out: list[Effect] = []
        for effect in expand_broadcasts(effects, self.config):
            if isinstance(effect, Send):
                mutated = self.mutator(effect.dst, effect.payload)
                if mutated is not None:
                    out.append(Send(effect.dst, mutated))
            elif isinstance(effect, (Decide, Deliver)):
                continue
            else:
                out.append(effect)
        return out

    def on_start(self) -> list[Effect]:
        return self._filter(self.inner.on_start())

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        return self._filter(guarded(self.inner, sender, payload))


class TwoFacedBehavior(ByzantineBehavior):
    """Run two honest instances and show a different one to each group.

    This is the strongest *consistent* equivocation: each half of the
    system observes a perfectly protocol-conformant process, but the two
    halves observe different proposals.  It is the scenario of Figure 2
    (process ``P3`` sending different messages to ``P1`` and ``P4``) played
    at every protocol layer simultaneously.

    Args:
        face_a: honest instance shown to group A.
        face_b: honest instance shown to group B.
        group_of: maps a destination to ``"a"`` or ``"b"``; default is id
            parity.
    """

    def __init__(
        self,
        face_a: Protocol,
        face_b: Protocol,
        group_of: Callable[[ProcessId], str] | None = None,
    ) -> None:
        super().__init__(face_a.process_id, face_a.config)
        self.face_a = face_a
        self.face_b = face_b
        self.group_of = group_of or (lambda dst: "a" if dst % 2 == 0 else "b")

    def _filter(self, effects: list[Effect], face: str) -> list[Effect]:
        out: list[Effect] = []
        for effect in expand_broadcasts(effects, self.config):
            if isinstance(effect, Send):
                if self.group_of(effect.dst) == face:
                    out.append(effect)
            elif isinstance(effect, (Decide, Deliver)):
                continue
            elif isinstance(effect, ServiceCall):
                if face == "a":  # one service identity per process
                    out.append(effect)
            elif isinstance(effect, Log):
                continue
            else:
                out.append(effect)
        return out

    def on_start(self) -> list[Effect]:
        return self._filter(self.face_a.on_start(), "a") + self._filter(
            self.face_b.on_start(), "b"
        )

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        return self._filter(guarded(self.face_a, sender, payload), "a") + self._filter(
            guarded(self.face_b, sender, payload), "b"
        )
