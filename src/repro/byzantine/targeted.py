"""Targeted, protocol-aware attacks on DEX.

The generic behaviors in :mod:`repro.byzantine.behaviors` perturb honest
traffic; the adversaries here instead *exploit the structure of the
conditions*.  The frequency pair decides fast when the gap between the two
most frequent values is large — so the strongest Byzantine strategy is not
random noise but a vote for the runner-up value, cast only after observing
the distribution.  These attacks are what the coverage guarantees (Lemmas
4/5, experiment E1) are sized against: a level-``k`` input must survive
``k`` of them.
"""

from __future__ import annotations

from collections import Counter

from ..broadcast.idb import IdbInit
from ..core.dex import DexProposal
from ..runtime.composite import Envelope
from ..runtime.effects import Broadcast, Decide, Deliver, Effect, ServiceCall
from ..runtime.protocol import Protocol, guarded
from ..types import ProcessId, SystemConfig, Value
from ..underlying.oracle import SERVICE_NAME, OracleProposal
from .adversary import ByzantineBehavior


class SpoilerBehavior(ByzantineBehavior):
    """Observe the proposals, then vote for the runner-up value.

    The spoiler stays silent until it has seen proposals from
    ``watch_threshold`` distinct processes, computes the second most
    frequent value (falling back to ``fallback`` when only one value was
    observed) and then proposes it on both DEX layers (plain + IDB) —
    shrinking every correct view's frequency gap by exactly 1, the
    worst-case perturbation the LT1/LT2 proofs budget per Byzantine
    process.

    Args:
        process_id: the faulty process.
        config: system parameters.
        fallback: value to inject when the observed proposals are unanimous
            (the spoiler then *creates* a runner-up).
        watch_threshold: distinct proposals to observe before attacking;
            defaults to ``n − t − 1`` (everyone else that is guaranteed to
            speak).
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        fallback: Value,
        watch_threshold: int | None = None,
    ) -> None:
        super().__init__(process_id, config)
        self.fallback = fallback
        self.watch_threshold = (
            watch_threshold
            if watch_threshold is not None
            else config.n - config.t - 1
        )
        self._observed: dict[ProcessId, Value] = {}
        self._attacked = False

    def _runner_up(self) -> Value:
        counts = Counter(self._observed.values())
        ranked = counts.most_common()
        if len(ranked) >= 2:
            return ranked[1][0]
        return self.fallback

    def on_message(self, sender: ProcessId, payload: object) -> list[Effect]:
        if self._attacked:
            return []
        value = None
        if isinstance(payload, DexProposal):
            value = payload.value
        elif isinstance(payload, Envelope) and isinstance(payload.payload, IdbInit):
            value = payload.payload.value
        if value is None:
            return []
        self._observed.setdefault(sender, value)
        if len(self._observed) < self.watch_threshold:
            return []
        self._attacked = True
        spoiler = self._runner_up()
        return [
            Broadcast(DexProposal(spoiler)),
            Broadcast(Envelope("idb", IdbInit(spoiler))),
            self.log("spoiler-attack", value=spoiler, observed=len(self._observed)),
        ]


class FallbackSaboteur(ByzantineBehavior):
    """Race a poison value into the underlying consensus, then act honest.

    The oracle underlying consensus accepts at most one proposal per
    caller, first write wins — so a Byzantine process that fires its
    ``UC_propose`` *before* running its honest start code locks its slot in
    the quorum to an arbitrary value.  Above the resilience bound this is
    provably harmless (any ``n − t`` quorum still has a correct majority);
    the model checker uses it to probe exactly that claim, and to help
    break under-resilient configurations where one poisoned slot can tip
    the most-frequent count.

    Args:
        inner: the honest protocol instance to run (its own later proposal
            is ignored by the oracle's first-write-wins rule).
        uc_value: the poison proposal.
        service: oracle service name.
        instance: consensus instance key.
    """

    def __init__(
        self,
        inner: Protocol,
        uc_value: Value,
        service: str = SERVICE_NAME,
        instance: object = 0,
    ) -> None:
        super().__init__(inner.process_id, inner.config)
        self.inner = inner
        self.uc_value = uc_value
        self.service = service
        self.instance = instance

    @staticmethod
    def _filter(effects: list[Effect]) -> list[Effect]:
        # A faulty process's outputs are meaningless; everything else —
        # including its honest-looking traffic — passes through.
        return [e for e in effects if not isinstance(e, (Decide, Deliver))]

    def on_start(self) -> list[Effect]:
        poison = ServiceCall(self.service, OracleProposal(self.instance, self.uc_value))
        return [poison, *self._filter(self.inner.on_start())]

    def on_message(self, sender: ProcessId, payload: object) -> list[Effect]:
        return self._filter(guarded(self.inner, sender, payload))


class GapCollapser(ByzantineBehavior):
    """A coordinated variant: ``f`` of these, given the same ``fallback``,
    shrink the gap by ``2f`` relative to an all-majority input — they count
    as missing majority votes *and* as extra runner-up votes.  Unlike
    :class:`SpoilerBehavior` it attacks immediately (no observation phase),
    modelling an adversary with a priori knowledge of the input.
    """

    def __init__(self, process_id: ProcessId, config: SystemConfig, value: Value) -> None:
        super().__init__(process_id, config)
        self.value = value

    def on_start(self) -> list[Effect]:
        return [
            Broadcast(DexProposal(self.value)),
            Broadcast(Envelope("idb", IdbInit(self.value))),
        ]
