"""The node worker: one sans-IO protocol behind a real socket.

A worker process hosts exactly one :class:`~repro.runtime.protocol.
Protocol` (honest or a Byzantine behavior wrapper — it cannot tell) and
connects to the orchestrator's hub socket.  The protocol is driven through
the standard path — :func:`~repro.runtime.protocol.guarded` handler calls,
:func:`~repro.engine.interpreter.interpret` effect execution — with a
:class:`NodeWorker` as the :class:`~repro.engine.interpreter.
ExecutionPorts` implementation: ``send`` writes a frame, ``broadcast``
inherits the shared per-destination fan-out (self-copy included; the hub
routes it back with zero jitter), ``decide`` reports to the hub once.
Because the interpreter and the rewriters are reused unchanged, every
fault that works in-memory works over the wire.

Workers are *forked*, not spawned: protocols routinely hold closures
(behavior factories, ``uc_factory`` lambdas) that pickle cannot move
across an exec boundary, while fork inherits them copy-on-write.  The
worker's lifecycle is defensive at every edge — connect retries with
exponential backoff, a receive timeout so a dead hub cannot wedge it, and
``os._exit`` termination so a forked child never runs the parent's
cleanup handlers.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any

from ..codec import Opaque
from ..codec.binary import wrap_opaque
from ..engine.interpreter import ExecutionPorts, interpret
from ..errors import SimulationError
from ..runtime.effects import Deliver, Log, ServiceCall
from ..runtime.protocol import Protocol, guarded
from ..types import ProcessId
from .faults import NODE_ENV_MARKER, ProcessCrash
from .wire import (
    CODEC_BINARY,
    CODEC_PICKLE,
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    Hello,
    MsgDecide,
    MsgDeliver,
    MsgDeliverBatch,
    MsgLog,
    MsgOutput,
    MsgSend,
    MsgService,
    Start,
    Stop,
    encode_frame_into,
)

#: Sentinel distinct from every payload (payloads can be ``None``).
_NO_CACHED_PAYLOAD = object()

#: Worker exit codes (collected by the cluster for post-mortems).
EXIT_OK = 0
EXIT_RECV_TIMEOUT = 3
EXIT_CONNECT_FAILED = 4
EXIT_INTERNAL_ERROR = 5


def connect_with_retry(
    family: int,
    address: Any,
    attempts: int = 30,
    base_delay: float = 0.01,
    max_delay: float = 0.5,
) -> socket.socket:
    """Connect to the hub, retrying with exponential backoff.

    Workers fork before the orchestrator finishes arming its listener's
    accept loop, so the first attempts may be refused; backoff doubles from
    ``base_delay`` up to ``max_delay`` per retry.

    Raises:
        SimulationError: every attempt failed (the last ``OSError`` is in
            the message).
    """
    delay = base_delay
    last_error: OSError | None = None
    for _ in range(attempts):
        sock = socket.socket(family, socket.SOCK_STREAM)
        try:
            sock.connect(address)
        except OSError as exc:
            sock.close()
            last_error = exc
            time.sleep(delay)
            delay = min(delay * 2, max_delay)
        else:
            if family == socket.AF_INET:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
    raise SimulationError(
        f"could not connect to hub at {address!r} after {attempts} attempts: "
        f"{last_error!r}"
    )


class NodeWorker(ExecutionPorts):
    """Execution ports whose far side is a socket to the hub.

    Args:
        pid: hosted process id.
        protocol: the protocol (or behavior wrapper) to drive.
        sock: connected hub socket.
        codec: wire codec for outgoing frames.
        max_frame: frame size cap (must match the hub's).
        crash: optional :class:`~repro.net.faults.ProcessCrash` chaos spec;
            checked before every outgoing message write.
    """

    def __init__(
        self,
        pid: ProcessId,
        protocol: Protocol,
        sock: socket.socket,
        codec: int = CODEC_PICKLE,
        max_frame: int = DEFAULT_MAX_FRAME,
        crash: ProcessCrash | None = None,
    ) -> None:
        self.pid = pid
        self.protocol = protocol
        self.config = protocol.config
        self.sock = sock
        self.codec = codec
        self.max_frame = max_frame
        self.crash = crash
        self._sent = 0
        self._hello_sent = False
        self._decided = False
        self._started = False
        self._buf = bytearray()
        # One-slot encoded-payload cache for the binary codec: a broadcast
        # reaches send() once per destination with the *same* payload
        # object, so the payload encodes once and splices n times.  The
        # cache holds the object itself, so its id cannot be recycled.
        self._cached_payload: Any = _NO_CACHED_PAYLOAD
        self._cached_opaque: Opaque | None = None

    def _write(self, msg: Any) -> None:
        self._write_to(self.sock, msg)

    def _write_to(self, sock: socket.socket, msg: Any) -> None:
        # Chaos check on every post-handshake frame: "outgoing message" for a
        # ProcessCrash budget means anything the node tells the world — a
        # send, a service call, even its decision announcement.  The Hello
        # handshake is exempt so a budget of zero still registers the node
        # (dying unconnected is the listener-timeout path, a separate regime).
        # Parameterized over the socket because a mesh node holds one
        # connection per hub and steers data frames by shard.
        if self._hello_sent and self.crash is not None:
            self.crash.maybe_kill(self._sent)
        buf = self._buf
        buf.clear()
        encode_frame_into(msg, buf, self.codec, self.max_frame)
        sock.sendall(buf)
        self._sent += 1

    # -- ExecutionPorts (broadcast inherits the per-destination default) ------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any, depth: int) -> None:
        if self.codec == CODEC_BINARY:
            if payload is not self._cached_payload:
                self._cached_payload = payload
                self._cached_opaque = wrap_opaque(payload)
            payload = self._cached_opaque
        self._write(MsgSend(src, dst, payload, depth))

    def decide(self, pid: ProcessId, value: Any, kind: Any, depth: int) -> None:
        if not self._decided:
            self._decided = True
            self._write(MsgDecide(pid, value, kind, depth))

    def output(self, pid: ProcessId, effect: Deliver, depth: int) -> None:
        self._write(MsgOutput(pid, effect.tag, effect.sender, effect.value))

    def service_call(self, pid: ProcessId, call: ServiceCall, depth: int) -> None:
        self._write(MsgService(pid, call, depth))

    def log_record(self, pid: ProcessId, record: Log, depth: int) -> None:
        self._write(MsgLog(pid, record.event, record.data))

    # -- lifecycle -------------------------------------------------------------------

    def run(self, recv_timeout: float = 60.0) -> int:
        """Drive the protocol until the hub says stop; return an exit code.

        The loop is frame-driven: ``Start`` runs ``on_start``, each
        ``MsgDeliver`` runs one guarded handler call, ``Stop`` (or the hub
        closing the connection) ends the run.  ``recv_timeout`` is a
        failsafe against a hub that died without closing its sockets.
        """
        decoder = FrameDecoder(self.max_frame)
        self.sock.settimeout(recv_timeout)
        self._write(Hello(self.pid, self.codec))
        self._hello_sent = True
        self._sent = 0
        while True:
            try:
                data = self.sock.recv(65536)
            except TimeoutError:
                return EXIT_RECV_TIMEOUT
            except OSError:
                return EXIT_OK  # hub tore the connection down: run is over
            if not data:
                return EXIT_OK
            for msg in decoder.feed(data):
                if not self._dispatch(msg):
                    return EXIT_OK

    def _dispatch(self, msg: Any) -> bool:
        """Handle one inbound frame; ``False`` = Stop, the run is over.

        Factored out of the recv loop so multi-connection workers (the
        mesh node selects over one socket per hub) drive the identical
        frame semantics."""
        if isinstance(msg, Start):
            if not self._started:
                self._started = True
                interpret(self, self.pid, self.protocol.on_start(), 0)
        elif isinstance(msg, MsgDeliver):
            effects = guarded(self.protocol, msg.sender, msg.payload)
            interpret(self, self.pid, effects, msg.depth)
        elif isinstance(msg, MsgDeliverBatch):
            # Identical to the same deliveries as consecutive frames.
            for sender, payload, depth in msg.entries:
                effects = guarded(self.protocol, sender, payload)
                interpret(self, self.pid, effects, depth)
        elif isinstance(msg, Stop):
            return False
        return True


def node_main(
    pid: ProcessId,
    protocol: Protocol | None,
    family: int,
    address: Any,
    codec: int = CODEC_PICKLE,
    max_frame: int = DEFAULT_MAX_FRAME,
    crash: ProcessCrash | None = None,
    recv_timeout: float = 60.0,
    build: Any = None,
) -> None:
    """Entry point of the forked worker process (never returns).

    Sets the :data:`~repro.net.faults.NODE_ENV_MARKER` that arms
    :class:`~repro.net.faults.ProcessCrash`, runs the worker, and leaves
    via ``os._exit`` so a forked child cannot re-run the parent's atexit
    machinery or flush inherited buffers twice.

    ``build`` — a zero-argument protocol factory — defers construction
    into the forked child; restarted crash-recovery workers use it so a
    durable protocol opens and replays its on-disk state *in the child*,
    not in the orchestrator.
    """
    os.environ[NODE_ENV_MARKER] = "1"
    code = EXIT_INTERNAL_ERROR
    sock: socket.socket | None = None
    try:
        if build is not None:
            protocol = build()
        sock = connect_with_retry(family, address)
        worker = NodeWorker(pid, protocol, sock, codec, max_frame, crash)
        code = worker.run(recv_timeout)
    except SimulationError:
        code = EXIT_CONNECT_FAILED
    except OSError:
        code = EXIT_OK  # the hub went away mid-write: the run is over
    except Exception:
        code = EXIT_INTERNAL_ERROR
    finally:
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
    os._exit(code)
