"""The cluster orchestrator: spawn, connect, route, collect — with deadlines.

:class:`NetCluster` is the hub of a star topology.  It forks one worker
process per consensus node (:func:`~repro.net.node.node_main`), accepts
their connections on a single listener (Unix-domain socket by default,
TCP loopback on request), and then runs a ``selectors`` event loop that
routes every frame node→hub→destination.  Centralising the traffic buys
what a full mesh cannot:

* **link authentication** — the hub overrides each ``MsgSend``'s claimed
  source with the connection's proven pid (paper §2.1: a Byzantine node
  cannot forge another sender's identity);
* **fault injection** — every frame crosses the :class:`~repro.net.faults.
  LinkPlan`, so drops/delays/duplicates/cuts happen at the transport;
* **shared services** — trusted abstractions like the §2.2 oracle must
  aggregate calls *across* processes, so they execute at the hub;
* **observability** — the hub emits the same typed
  :mod:`repro.engine.events` stream as every in-memory backend;
* **liveness** — one place enforces the per-run deadline, detects stalls
  (every undecided correct node dead, nothing in flight), and kills
  stragglers, so a crashed or silent node can never hang a run.

Seeded per-message jitter (``uniform(0.5, 1.5) × mean_delay``, self-sends
undelayed) mirrors the asyncio runner, and — as there — real scheduling
makes interleavings only *mostly* reproducible; exact-replay tests belong
on the simulator.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import random
import selectors
import socket
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..codec import CODEC_IDS, Opaque
from ..engine.events import EventSink
from ..engine.faults import RestartPlan
from ..engine.interpreter import dispatch_service_call
from ..errors import SimulationError
from ..runtime.asyncio_runner import AsyncRunResult
from ..runtime.effects import SERVICE_SENDER, Deliver
from ..runtime.protocol import Protocol
from ..runtime.services import Service, ServiceReply
from ..sim.latency import LognormalLatency
from ..types import Decision, ProcessId, RunStats, SystemConfig
from .events import HubEvents, StreamClock
from .faults import LinkPlan, ProcessCrash
from .node import node_main
from .wire import (
    CODEC_BINARY,
    CODEC_PICKLE,
    DEFAULT_MAX_FRAME,
    DELIVERY_BATCH_CHUNK,  # noqa: F401  (re-exported; was defined here)
    FrameDecoder,
    FrameTooLarge,
    Hello,
    MsgDecide,
    MsgDeliver,
    MsgDeliverBatch,
    MsgLog,
    MsgOutput,
    MsgSend,
    MsgService,
    Start,
    Stop,
    TruncatedStream,
    batch_frames,
    encode_frame_into,
)

#: Supported transports for the hub listener.
TRANSPORTS = ("uds", "tcp")

#: Hub jitter models (seeded either way).
JITTERS = ("uniform", "lognormal")

#: Default ready-queue depth at which a hub declares itself saturated
#: (see :class:`~repro.engine.events.HubSaturatedEvent`).
DEFAULT_HIGH_WATER = 512


def materialize_for(codec: int, msg: Any) -> Any:
    """Decode relayed :class:`~repro.codec.Opaque` spans when the
    destination connection does not speak the binary codec (mixed-codec
    cluster): a span splices only into binary frames.  Module-level so
    every hub implementation (star and mesh hub workers) shares it."""
    if codec == CODEC_BINARY:
        return msg
    if type(msg) is MsgDeliver and type(msg.payload) is Opaque:
        return MsgDeliver(msg.sender, msg.payload.decode(), msg.depth)
    if type(msg) is MsgDeliverBatch:
        return MsgDeliverBatch(
            tuple(
                (s, p.decode() if type(p) is Opaque else p, d)
                for s, p, d in msg.entries
            )
        )
    return msg


@dataclass
class NetRunResult(AsyncRunResult):
    """Outcome of one socket-engine run.

    Extends the shared wall-clock result surface with per-node OS exit
    codes (``None`` = the worker never terminated and was killed) and the
    transport used, so robustness tests can assert *how* each process
    died, not just that the run survived it.
    """

    exit_codes: dict[ProcessId, int | None] = field(default_factory=dict)
    transport: str = "uds"
    #: frames the hub wrote to node sockets (delivery batching shrinks this
    #: without changing ``stats.messages_delivered``).
    hub_frames: int = 0
    #: bytes the hub wrote to node sockets (the codec ablation's
    #: bytes-per-frame denominator is ``hub_bytes / hub_frames``).
    hub_bytes: int = 0
    #: per-hub frame/byte split (hub index → count).  The star topology has
    #: exactly one hub, so these are ``{0: hub_frames}`` / ``{0: hub_bytes}``;
    #: a mesh run fans them out per hub group — the counters that *prove*
    #: the load actually split.
    hub_frame_counts: dict[int, int] = field(default_factory=dict)
    hub_byte_counts: dict[int, int] = field(default_factory=dict)
    #: how each forked hub worker exited (hub index → exit code, ``-9`` for
    #: a SIGKILLed hub, ``None`` = never terminated and was killed at
    #: teardown).  Empty for the star topology — its single hub *is* the
    #: orchestrator — and for remote hubs, which are not our children.
    hub_exit_codes: dict[int, int | None] = field(default_factory=dict)


@dataclass
class _Conn:
    """One node's hub-side connection state."""

    pid: ProcessId
    sock: socket.socket
    decoder: FrameDecoder
    #: wire codec for this connection — announced by the node's Hello, so
    #: mixed-codec clusters work (the hub speaks each node's dialect).
    codec: int = CODEC_PICKLE


class NetCluster:
    """Run one protocol deployment as real OS processes over sockets.

    Args:
        config: system parameters.
        protocols: one protocol (or Byzantine behavior) per process —
            built exactly as for every other backend; workers inherit them
            via fork (closures and all), so nothing is pickled.
        faulty: declared-faulty process ids (bookkeeping, as everywhere).
        services: trusted services by name; executed at the hub.
        seed: seeds link jitter and probabilistic link faults.
        mean_delay: average one-way hub→node delay in seconds.
        event_sink: optional structured-event sink; times are wall-clock
            seconds since the run started.
        transport: ``"uds"`` (default) or ``"tcp"`` (loopback).
        codec: wire codec (:data:`~repro.net.wire.CODEC_BINARY` default —
            the struct-packed data plane; nodes announce theirs in the
            Hello frame and the hub honors it per connection).
        max_frame: frame size cap, enforced on every link in both
            directions.
        link_plan: transport-level fault plan (see
            :func:`~repro.net.faults.plan_from_plane`).
        jitter: per-message delay model — ``"uniform"`` (bounded,
            ``uniform(0.5, 1.5) × mean_delay``) or ``"lognormal"``
            (long-tailed with the same mean; see
            :class:`~repro.sim.latency.LognormalLatency`).
        batch_deliveries: coalesce co-scheduled deliveries per destination
            into :class:`~repro.net.wire.MsgDeliverBatch` frames (fewer
            hub syscalls; per-message semantics unchanged).
        chaos: *unannounced* per-pid :class:`~repro.net.faults.
            ProcessCrash` specs — invisible to ``faulty`` on purpose.
        connect_timeout: how long to wait for all workers to dial in.
        restarts: per-pid :class:`~repro.engine.faults.RestartPlan` crash-
            recovery schedules — a timed SIGKILL at ``plan.at`` seconds
            after Start and (when ``plan.restart_after`` is set) a
            re-fork that many seconds later.  The restarted worker builds
            its protocol *in the child* via ``plan.factory``, dials the
            hub, and is re-authenticated by its Hello exactly like an
            initial connection.  A chaos :class:`~repro.net.faults.
            ProcessCrash` with ``restart_after`` set relaunches the same
            way when its EOF is noticed (using the plan's factory when
            one exists, an amnesiac re-fork otherwise).
    """

    def __init__(
        self,
        config: SystemConfig,
        protocols: Mapping[ProcessId, Protocol],
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        services: Mapping[str, Service] | None = None,
        seed: int = 0,
        mean_delay: float = 0.0005,
        event_sink: EventSink | None = None,
        transport: str = "uds",
        codec: int = CODEC_BINARY,
        max_frame: int = DEFAULT_MAX_FRAME,
        link_plan: LinkPlan | None = None,
        chaos: Mapping[ProcessId, ProcessCrash] | None = None,
        connect_timeout: float = 10.0,
        jitter: str = "uniform",
        batch_deliveries: bool = True,
        restarts: Mapping[ProcessId, RestartPlan] | None = None,
        high_water: int = DEFAULT_HIGH_WATER,
    ) -> None:
        if set(protocols) != set(config.processes):
            raise SimulationError(
                "protocols must cover exactly the process ids of the config"
            )
        if transport not in TRANSPORTS:
            raise SimulationError(
                f"unknown transport {transport!r} (one of: {', '.join(TRANSPORTS)})"
            )
        if jitter not in JITTERS:
            raise SimulationError(
                f"unknown jitter model {jitter!r} (one of: {', '.join(JITTERS)})"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise SimulationError(
                "the net engine needs the fork start method (protocols hold "
                "closures that cannot cross an exec boundary); this platform "
                "does not provide it"
            )
        self.config = config
        self.protocols = dict(protocols)
        self.faulty = frozenset(faulty)
        self.services = dict(services or {})
        self.rng = random.Random(seed)
        self.mean_delay = mean_delay
        self.transport = transport
        self.codec = codec
        self.max_frame = max_frame
        self.link_plan = link_plan if link_plan is not None else LinkPlan()
        self.chaos = dict(chaos or {})
        self.connect_timeout = connect_timeout
        self.jitter = jitter
        self.batch_deliveries = batch_deliveries
        self._lognormal = (
            LognormalLatency(mean_delay) if jitter == "lognormal" and mean_delay > 0
            else None
        )
        self.hub_frames = 0
        self.hub_bytes = 0
        #: ready-queue saturation watermark; the latch makes the event fire
        #: once per saturation episode, not once per frame past the mark.
        self.high_water = high_water
        self._saturated = False
        #: reusable frame-encode buffer: the hub's entire write side goes
        #: through it, so steady-state routing allocates no per-frame bytes.
        self._send_buf = bytearray()
        self.stats = RunStats()
        self.decisions: dict[ProcessId, Decision] = {}
        self.outputs: dict[ProcessId, list[Deliver]] = {
            pid: [] for pid in config.processes
        }
        self._clock = StreamClock()
        self.events = HubEvents(event_sink, self._clock)
        self._conns: dict[ProcessId, _Conn] = {}
        self._dead: set[ProcessId] = set()
        self._selector: selectors.BaseSelector | None = None
        # delay heap entries: (due, seq, dst, sender, payload, depth)
        self._heap: list[tuple[float, int, ProcessId, ProcessId, Any, int]] = []
        self._seq = 0
        self._uds_dir: str | None = None
        # crash-recovery lifecycle state
        self.restarts = dict(restarts or {})
        self._children: dict[ProcessId, Any] = {}
        self._family: int | None = None
        self._address: Any = None
        self._kills: list[tuple[float, ProcessId]] = []
        self._relaunches: list[tuple[float, ProcessId]] = []
        self._pending_restart: set[ProcessId] = set()
        self._running = False

    # -- wiring ---------------------------------------------------------------------

    def _make_listener(self) -> tuple[socket.socket, int, Any]:
        if self.transport == "uds":
            self._uds_dir = tempfile.mkdtemp(prefix="repro-net-")
            address = os.path.join(self._uds_dir, "hub.sock")
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(address)
            family = socket.AF_UNIX
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind(("127.0.0.1", 0))
            address = listener.getsockname()
            family = socket.AF_INET
        listener.listen(self.config.n)
        return listener, family, address

    def _spawn(self, family: int, address: Any) -> dict[ProcessId, Any]:
        ctx = multiprocessing.get_context("fork")
        children = {}
        for pid in self.config.processes:
            proc = ctx.Process(
                target=node_main,
                args=(pid, self.protocols[pid], family, address),
                kwargs={
                    "codec": self.codec,
                    "max_frame": self.max_frame,
                    "crash": self.chaos.get(pid),
                },
                daemon=True,
                name=f"repro-net-node-{pid}",
            )
            proc.start()
            children[pid] = proc
        self._children = children
        return children

    # -- crash-recovery lifecycle ----------------------------------------------------

    def _service_restarts(self, now: float) -> None:
        """Fire every due scheduled kill and every due relaunch."""
        while self._kills and self._kills[0][0] <= now:
            _, pid = heapq.heappop(self._kills)
            self._kill_node(pid)
        while self._relaunches and self._relaunches[0][0] <= now:
            _, pid = heapq.heappop(self._relaunches)
            self._relaunch(pid)

    def _kill_node(self, pid: ProcessId) -> None:
        """SIGKILL one worker mid-run (the CrashRecover timed crash)."""
        proc = self._children.get(pid)
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=2.0)
        self.events.fault(pid, "CrashRecover", "killed")
        plan = self.restarts.get(pid)
        if plan is not None and plan.restart_after is not None:
            # Register the relaunch *before* _mark_dead so the EOF path
            # cannot double-schedule it.
            self._pending_restart.add(pid)
            heapq.heappush(
                self._relaunches, (time.monotonic() + plan.restart_after, pid)
            )
        self._mark_dead(pid)

    def _relaunch(self, pid: ProcessId) -> None:
        """Re-fork one worker; its Hello re-authenticates the link."""
        if self._family is None:
            return
        plan = self.restarts.get(pid)
        ctx = multiprocessing.get_context("fork")
        if plan is not None:
            # Build in the child: a durable protocol scans its WAL and
            # snapshot on construction, *after* the crash mutated them.
            args = (pid, None, self._family, self._address)
            kwargs: dict[str, Any] = {"build": plan.factory}
        else:
            # Amnesiac chaos restart: the parent's pristine instance.
            args = (pid, self.protocols[pid], self._family, self._address)
            kwargs = {}
        proc = ctx.Process(
            target=node_main,
            args=args,
            kwargs={
                "codec": self.codec,
                "max_frame": self.max_frame,
                **kwargs,
            },
            daemon=True,
            name=f"repro-net-node-{pid}-r",
        )
        proc.start()
        self._children[pid] = proc

    def _accept_restart(self, listener: socket.socket) -> None:
        """Accept one connection mid-run; register it if it is a restarted
        worker's Hello, drop anything else."""
        try:
            sock, _ = listener.accept()
        except (TimeoutError, OSError):
            return
        sock.settimeout(1.0)
        if self.transport == "tcp":
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        decoder = FrameDecoder(self.max_frame, lazy=True)
        try:
            data = sock.recv(4096)
        except (TimeoutError, OSError):
            sock.close()
            return
        if data:
            for msg in decoder.feed(data):
                if isinstance(msg, Hello) and msg.pid in self._pending_restart:
                    self._register_restarted(msg.pid, sock, decoder, msg.codec)
                    return
        sock.close()

    def _conn_codec(self, announced: int) -> int:
        """The codec to speak on a connection: the node's announced codec
        when it is a known id, the cluster default otherwise (``0`` = the
        node expressed no preference)."""
        return announced if announced in CODEC_IDS else self.codec

    def _register_restarted(
        self,
        pid: ProcessId,
        sock: socket.socket,
        decoder: FrameDecoder,
        announced: int = 0,
    ) -> None:
        self._pending_restart.discard(pid)
        self._dead.discard(pid)
        conn = _Conn(pid, sock, decoder, self._conn_codec(announced))
        self._conns[pid] = conn
        if self._selector is not None:
            self._selector.register(sock, selectors.EVENT_READ, conn)
        self.events.restart(pid)
        self._write(pid, Start())

    def _accept_all(self, listener: socket.socket) -> None:
        """Accept connections and read Hellos until every node dialed in
        (or the connect timeout passed — missing nodes are marked dead)."""
        deadline = time.monotonic() + self.connect_timeout
        listener.settimeout(0.1)
        pending: list[tuple[socket.socket, FrameDecoder]] = []
        while len(self._conns) + len(pending) < self.config.n:
            if time.monotonic() > deadline:
                break
            try:
                sock, _ = listener.accept()
            except TimeoutError:
                pass
            else:
                sock.settimeout(1.0)
                if self.transport == "tcp":
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                pending.append((sock, FrameDecoder(self.max_frame, lazy=True)))
            pending = [p for p in pending if not self._try_hello(*p, deadline)]
        for sock, _ in pending:
            sock.close()
        for pid in self.config.processes:
            if pid not in self._conns:
                self._dead.add(pid)
                self.events.fault(pid, "never-connected")

    def _try_hello(
        self, sock: socket.socket, decoder: FrameDecoder, deadline: float
    ) -> bool:
        """Read one frame off a fresh connection; register it on Hello."""
        try:
            data = sock.recv(4096)
        except TimeoutError:
            return False
        except OSError:
            sock.close()
            return True
        if not data:
            sock.close()
            return True
        for msg in decoder.feed(data):
            if isinstance(msg, Hello) and msg.pid in range(self.config.n):
                self._conns[msg.pid] = _Conn(
                    msg.pid, sock, decoder, self._conn_codec(msg.codec)
                )
                return True
        return False

    # -- frame plumbing --------------------------------------------------------------

    #: see the module-level :func:`materialize_for` (kept as a static
    #: attribute for the existing call sites).
    _materialize_for = staticmethod(materialize_for)

    def _write(self, pid: ProcessId, msg: Any) -> bool:
        conn = self._conns.get(pid)
        if conn is None or pid in self._dead:
            return False
        buf = self._send_buf
        buf.clear()
        encode_frame_into(
            self._materialize_for(conn.codec, msg), buf, conn.codec, self.max_frame
        )
        try:
            conn.sock.sendall(buf)
            self.hub_frames += 1
            self.hub_bytes += len(buf)
            return True
        except OSError:
            self._mark_dead(pid)
            return False

    def _write_frames(
        self, pid: ProcessId, msgs: list[Any]
    ) -> list[Any]:
        """Encode several frames into one buffer and write them with a
        single ``sendall`` (writev-style coalescing: one syscall per
        destination per delivery sweep instead of one per frame).

        A frame that overflows ``max_frame`` is re-queued by the caller;
        returns the messages actually written (all of them, or none on a
        dead connection).

        Raises:
            FrameTooLarge: some frame exceeds the cap — nothing is sent;
                the caller falls back per-frame.
        """
        conn = self._conns.get(pid)
        if conn is None or pid in self._dead:
            return []
        buf = self._send_buf
        buf.clear()
        codec = conn.codec
        for msg in msgs:
            encode_frame_into(
                self._materialize_for(codec, msg), buf, codec, self.max_frame
            )
        try:
            conn.sock.sendall(buf)
            self.hub_frames += len(msgs)
            self.hub_bytes += len(buf)
            return msgs
        except OSError:
            self._mark_dead(pid)
            return []

    def _mark_dead(self, pid: ProcessId) -> None:
        if pid in self._dead:
            return
        self._dead.add(pid)
        conn = self._conns.pop(pid, None)
        if conn is not None:
            if self._selector is not None:
                try:
                    self._selector.unregister(conn.sock)
                except (KeyError, ValueError):
                    pass
            try:
                conn.sock.close()
            except OSError:
                pass
        # Chaos recovery: an *unannounced* ProcessCrash with a restart
        # delay relaunches once its EOF is noticed (scheduled CrashRecover
        # kills register their relaunch in _kill_node before reaching here).
        if self._running and pid not in self._pending_restart:
            spec = self.chaos.get(pid)
            if spec is not None and spec.restart_after is not None:
                self._pending_restart.add(pid)
                heapq.heappush(
                    self._relaunches, (time.monotonic() + spec.restart_after, pid)
                )

    def _jitter(self) -> float:
        if self._lognormal is not None:
            return self._lognormal.sample(self.rng, 0, 0)
        return self.rng.uniform(0.5, 1.5) * self.mean_delay

    def _schedule(
        self, dst: ProcessId, sender: ProcessId, payload: Any, depth: int, delay: float
    ) -> None:
        self._seq += 1
        heapq.heappush(
            self._heap,
            (time.monotonic() + delay, self._seq, dst, sender, payload, depth),
        )
        if not self._saturated and len(self._heap) >= self.high_water:
            self._saturated = True
            self.events.saturated(0, len(self._heap), self.high_water)

    def _route(self, src: ProcessId, msg: MsgSend) -> None:
        """One node→node message: authenticate, count, fault-inject, queue."""
        self.stats.messages_sent += 1
        self.events.send(src, msg.dst, msg.payload, msg.depth)
        for extra in self.link_plan.route(src, msg.dst, self.rng):
            base = 0.0 if msg.dst == src else self._jitter()
            self._schedule(msg.dst, src, msg.payload, msg.depth, base + extra)

    def _deliver_due(self, now: float) -> None:
        if self._saturated and len(self._heap) <= self.high_water // 2:
            self._saturated = False  # episode over: re-arm the latch
        if not self.batch_deliveries:
            while self._heap and self._heap[0][0] <= now:
                _, _, dst, sender, payload, depth = heapq.heappop(self._heap)
                if self._write(dst, MsgDeliver(sender, payload, depth)):
                    self.stats.messages_delivered += 1
                    self.events.deliver(dst, sender, payload, depth)
            return
        # Coalesce every due delivery per destination into one frame (per
        # 32-entry chunk): multiplexed workloads make whole quorums of
        # instance traffic come due in the same sweep, and one frame per
        # destination replaces one syscall per message.  Per-destination
        # delivery order is exactly the heap's pop order, as before.
        batches: dict[ProcessId, list[tuple[ProcessId, Any, int]]] = {}
        order: list[ProcessId] = []
        while self._heap and self._heap[0][0] <= now:
            _, _, dst, sender, payload, depth = heapq.heappop(self._heap)
            if dst not in batches:
                batches[dst] = []
                order.append(dst)
            batches[dst].append((sender, payload, depth))
        for dst in order:
            entries = batches[dst]
            frames, per_frame = batch_frames(entries)
            delivered: list[tuple[ProcessId, Any, int]] = []
            try:
                # One coalesced write per destination per sweep.
                if self._write_frames(dst, frames):
                    delivered = entries
            except FrameTooLarge:
                # huge payloads: fall back to one frame per message
                delivered = [
                    entry
                    for chunk in per_frame
                    for entry in chunk
                    if self._write(dst, MsgDeliver(*entry))
                ]
            for sender, payload, depth in delivered:
                self.stats.messages_delivered += 1
                self.events.deliver(dst, sender, payload, depth)

    def _handle(self, conn: _Conn, msg: Any) -> None:
        pid = conn.pid
        if isinstance(msg, MsgSend):
            self._route(pid, msg)  # src override: link-authenticated sender
        elif isinstance(msg, MsgDecide):
            if pid not in self.decisions:
                self.decisions[pid] = Decision(
                    msg.value, msg.kind, step=msg.step, time=time.monotonic()
                )
                self.events.decide(pid, msg.value, msg.kind, msg.step)
        elif isinstance(msg, MsgOutput):
            self.outputs[pid].append(Deliver(msg.tag, msg.sender, msg.value))
            self.events.output(pid, msg.tag, msg.sender, msg.value)
        elif isinstance(msg, MsgService):
            self.events.service(pid, msg.call.service, msg.call.payload)
            dispatch_service_call(
                self.services,
                pid,
                msg.call,
                msg.depth,
                time.monotonic(),
                self._deliver_reply,
            )
        elif isinstance(msg, MsgLog):
            self.events.log(pid, msg.event, msg.data)

    def _deliver_reply(self, reply: ServiceReply, payload: Any) -> None:
        # Simulated-units reply delay is replaced by hub jitter, exactly as
        # on the asyncio backend.
        self._schedule(reply.dst, SERVICE_SENDER, payload, reply.depth, self._jitter())

    # -- liveness -------------------------------------------------------------------

    def _all_correct_decided(self) -> bool:
        return all(
            pid in self.decisions
            for pid in self.config.processes
            if pid not in self.faulty
        )

    def _stalled(self) -> bool:
        """No progress is possible: every undecided correct node is dead
        and nothing is queued for delivery.  Sound because a dead node's
        outstanding frames are drained before its EOF is observed."""
        if self._heap:
            return False
        if self._pending_restart or self._kills or self._relaunches:
            return False  # a scheduled kill or a rejoin can still make progress
        return all(
            pid in self._dead
            for pid in self.config.processes
            if pid not in self.faulty and pid not in self.decisions
        )

    # -- the run --------------------------------------------------------------------

    def run(self, timeout: float = 30.0) -> NetRunResult:
        """Spawn, connect, route until every correct node decided (or the
        deadline), then tear everything down — stragglers killed, exit
        codes collected, sockets and the UDS path removed."""
        start = time.monotonic()
        self._clock.start()
        listener, family, address = self._make_listener()
        self._family, self._address = family, address
        children = self._spawn(family, address)
        timed_out = False
        try:
            self._accept_all(listener)
            for pid, crash in sorted(self.chaos.items()):
                self.events.fault(pid, "ProcessCrash", f"after={crash.after}")
            self._selector = selectors.DefaultSelector()
            self._selector.register(listener, selectors.EVENT_READ, None)
            for conn in self._conns.values():
                self._selector.register(conn.sock, selectors.EVENT_READ, conn)
            self._register_extra()
            started = time.monotonic()
            for pid in self._conns:
                self._write(pid, Start())
            for pid, plan in sorted(self.restarts.items()):
                if plan.at is not None:
                    heapq.heappush(self._kills, (started + plan.at, pid))
            self._running = True
            deadline = start + timeout
            while not self._all_correct_decided():
                now = time.monotonic()
                if now >= deadline:
                    timed_out = True
                    break
                self._service_restarts(now)
                if self._stalled():
                    timed_out = True
                    break
                wait = deadline - now
                if self._heap:
                    wait = min(wait, max(self._heap[0][0] - now, 0.0))
                if self._kills:
                    wait = min(wait, max(self._kills[0][0] - now, 0.0))
                if self._relaunches:
                    wait = min(wait, max(self._relaunches[0][0] - now, 0.0))
                for key, _ in self._selector.select(min(wait, 0.05)):
                    if key.data is None:
                        self._accept_restart(listener)
                    else:
                        self._pump(key.data)
                self._deliver_due(time.monotonic())
        finally:
            self._running = False
            self._shutdown(listener)
            exit_codes = self._reap(children)
        return NetRunResult(
            config=self.config,
            decisions=dict(self.decisions),
            outputs=self.outputs,
            stats=self.stats,
            faulty=self.faulty,
            wall_seconds=time.monotonic() - start,
            timed_out=timed_out,
            exit_codes=exit_codes,
            transport=self.transport,
            hub_frames=self.hub_frames,
            hub_bytes=self.hub_bytes,
            hub_frame_counts={0: self.hub_frames},
            hub_byte_counts={0: self.hub_bytes},
        )

    def _register_extra(self) -> None:
        """Register additional selector entries before the main loop.

        A hook for subclasses — the mesh orchestrator registers its hub
        control links here; the star topology has nothing extra."""

    def _pump(self, conn: _Conn) -> None:
        """Drain one readable connection into the frame handler."""
        try:
            data = conn.sock.recv(65536)
        except TimeoutError:
            return
        except OSError:
            self._mark_dead(conn.pid)
            return
        if not data:
            try:
                conn.decoder.eof()
            except TruncatedStream as exc:
                self.events.fault(conn.pid, "truncated-stream", str(exc))
            self._mark_dead(conn.pid)
            return
        for msg in conn.decoder.feed(data):
            self._handle(conn, msg)

    def _shutdown(self, listener: socket.socket) -> None:
        for pid in list(self._conns):
            if pid not in self._dead:
                self._write(pid, Stop())
        for pid in list(self._conns):
            self._mark_dead(pid)
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        try:
            listener.close()
        except OSError:
            pass
        if self._uds_dir is not None:
            for name in ("hub.sock",):
                try:
                    os.unlink(os.path.join(self._uds_dir, name))
                except OSError:
                    pass
            try:
                os.rmdir(self._uds_dir)
            except OSError:
                pass
            self._uds_dir = None

    def _reap(self, children: Mapping[ProcessId, Any]) -> dict[ProcessId, int | None]:
        """Join every worker, escalating terminate → kill for stragglers."""
        exit_codes: dict[ProcessId, int | None] = {}
        for pid, proc in children.items():
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
            exit_codes[pid] = proc.exitcode
            proc.close()
        return exit_codes
