"""Hub-side event emission: the socket engine on the shared event stream.

The orchestrator observes every frame that crosses the hub and translates
it into the same typed :mod:`repro.engine.events` vocabulary the other
four backends emit, so :class:`~repro.engine.events.EventStats`,
:class:`~repro.engine.events.TracerSink`, :class:`~repro.engine.events.
EventLog` — and any metrics built on them — work unchanged over real
sockets.  Event ``time`` is wall-clock seconds since the run started
(the same convention as the asyncio backend).

One approximation is inherent to the topology: a ``DeliverEvent`` is
emitted when the hub hands the frame to the destination's socket, not when
the destination process dequeues it.  The gap is one socket hop; per-run
counters (the thing :class:`EventStats` computes) are exact either way.
"""

from __future__ import annotations

import time
from typing import Any

from ..codec import Opaque
from ..engine.events import (
    DecideEvent,
    DeliverEvent,
    EventSink,
    FaultEvent,
    HubSaturatedEvent,
    LogEvent,
    OutputEvent,
    RestartEvent,
    SendEvent,
    ServiceEvent,
)
from ..types import ProcessId


def _materialize(payload: Any) -> Any:
    """Decode a relayed payload span for the event stream.

    The hub forwards binary-codec payloads as :class:`~repro.codec.Opaque`
    spans without decoding; only an attached sink ever needs the object,
    so the decode happens here — on emit, never on the relay fast path.
    """
    return payload.decode() if type(payload) is Opaque else payload


class StreamClock:
    """Wall-clock offsets since :meth:`start` (monotonic source)."""

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    def start(self) -> None:
        self._t0 = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._t0


class HubEvents:
    """Emit typed run events for hub-observed traffic.

    A thin guard layer: every method is a no-op when no sink is attached,
    so the cluster keeps a single ``self.events.<kind>(...)`` call per
    observation and pays nothing when nobody is watching.
    """

    __slots__ = ("sink", "clock")

    def __init__(self, sink: EventSink | None, clock: StreamClock) -> None:
        self.sink = sink
        self.clock = clock

    def send(self, src: ProcessId, dst: ProcessId, payload: Any, depth: int) -> None:
        if self.sink is not None:
            payload = _materialize(payload)
            self.sink.emit(SendEvent(self.clock.now(), src, dst, payload, depth))

    def deliver(
        self, dst: ProcessId, sender: ProcessId, payload: Any, depth: int
    ) -> None:
        if self.sink is not None:
            payload = _materialize(payload)
            self.sink.emit(DeliverEvent(self.clock.now(), dst, sender, payload, depth))

    def decide(self, pid: ProcessId, value: Any, kind: Any, step: int) -> None:
        if self.sink is not None:
            self.sink.emit(DecideEvent(self.clock.now(), pid, value, kind, step))

    def output(self, pid: ProcessId, tag: str, sender: ProcessId, value: Any) -> None:
        if self.sink is not None:
            self.sink.emit(OutputEvent(self.clock.now(), pid, tag, sender, value))

    def service(self, pid: ProcessId, service: str, payload: Any) -> None:
        if self.sink is not None:
            self.sink.emit(ServiceEvent(self.clock.now(), pid, service, payload))

    def log(self, pid: ProcessId, event: str, data: dict[str, Any]) -> None:
        if self.sink is not None:
            self.sink.emit(LogEvent(self.clock.now(), pid, event, data))

    def fault(self, pid: ProcessId, fault: str, detail: str = "") -> None:
        if self.sink is not None:
            self.sink.emit(FaultEvent(self.clock.now(), pid, fault, detail))

    def restart(self, pid: ProcessId, detail: str = "") -> None:
        if self.sink is not None:
            self.sink.emit(RestartEvent(self.clock.now(), pid, detail))

    def saturated(self, hub: int, depth: int, high_water: int) -> None:
        """A hub's ready queue crossed its high-water mark (pid = hub index)."""
        if self.sink is not None:
            self.sink.emit(
                HubSaturatedEvent(self.clock.now(), hub, depth, high_water)
            )
