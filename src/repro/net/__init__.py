"""``repro.net`` — the real-socket execution engine (fifth backend).

Every other backend (``sim``, ``asyncio``, ``sync``, ``mc``) delivers
messages in-memory; this package runs each consensus node as its own OS
process and ships every payload through a kernel socket, so the one-step
fast path races against *genuine* network nondeterminism — scheduler
jitter, socket buffering, real reordering — instead of a simulated clock.

Layout:

* :mod:`repro.net.wire` — length-prefixed framing and the versioned codec
  (the wire protocol proper);
* :mod:`repro.net.node` — the worker process hosting one sans-IO
  :class:`~repro.runtime.protocol.Protocol` behind
  :class:`~repro.engine.interpreter.ExecutionPorts`;
* :mod:`repro.net.cluster` — the orchestrator: spawn, connect, collect,
  with deadlines and straggler kill;
* :mod:`repro.net.faults` — link-level fault behaviors (drop, delay,
  duplicate, cut) and the projection of the
  :class:`~repro.engine.faults.FaultPlane` onto them;
* :mod:`repro.net.events` — the hub-side adapter emitting the shared
  typed :mod:`repro.engine.events` stream.

Entry point: ``Scenario(..., engine="net")`` or ``python -m repro run
--engine net``.
"""

from .cluster import NetCluster, NetRunResult
from .faults import (
    CutAfter,
    DelayLink,
    DropLink,
    DuplicateLink,
    LinkFault,
    LinkPlan,
    ProcessCrash,
    ReorderLink,
    plan_from_plane,
)
from .wire import (
    CODEC_JSON,
    CODEC_PICKLE,
    WIRE_VERSION,
    FrameDecoder,
    FrameTooLarge,
    TruncatedStream,
    WireError,
    encode_frame,
)

__all__ = [
    "NetCluster",
    "NetRunResult",
    "LinkFault",
    "LinkPlan",
    "DropLink",
    "DelayLink",
    "DuplicateLink",
    "ReorderLink",
    "CutAfter",
    "ProcessCrash",
    "plan_from_plane",
    "WIRE_VERSION",
    "CODEC_PICKLE",
    "CODEC_JSON",
    "FrameDecoder",
    "FrameTooLarge",
    "TruncatedStream",
    "WireError",
    "encode_frame",
]
