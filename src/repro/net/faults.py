"""Link-level faults: the transport projection of the fault plane.

On the in-memory backends a fault is a wrapper *protocol* — the faulty
process itself misbehaves.  On the socket engine the same wrappers still
run inside the node processes (the :class:`~repro.engine.faults.FaultPlane`
builds them exactly as everywhere else), but the transport adds a second,
independent enforcement point: the hub routes every frame through a
:class:`LinkPlan`, which can drop, delay, duplicate, or cut traffic
per source link.

Two things live here:

* the :class:`LinkFault` behaviors and :func:`plan_from_plane`, which
  projects the crash-model faults of a plane onto links (``Silent`` — a
  crashed node sends nothing, so its link drops everything; ``Crash(b)`` —
  the link dies after ``b`` point-to-point messages, matching the
  message-budget semantics of the other backends).  Byzantine faults have
  *no* link projection — equivocation is a payload property, not a link
  property — and are skipped: their wrapper protocols ride inside the node
  processes and their traffic crosses the wire verbatim.
* :class:`ProcessCrash`, the chaos spec for an *unannounced* OS-process
  death.  It is deliberately not a :class:`~repro.engine.faults.Fault`:
  the fault plane (and therefore the correct set, validation, and every
  invariant check) must not know about it — that is the point.  The node
  worker calls ``os._exit`` mid-run, which only a real-process engine can
  model at all.
"""

from __future__ import annotations

import abc
import copy
import os
from dataclasses import dataclass
from random import Random
from typing import Iterable, Mapping, Sequence

from ..engine.faults import Crash, FaultPlane, Silent
from ..types import ProcessId

__all__ = [
    "LinkFault",
    "DropLink",
    "DelayLink",
    "DuplicateLink",
    "ReorderLink",
    "CutAfter",
    "LinkPlan",
    "plan_from_plane",
    "ProcessCrash",
]

#: Environment marker set by the node worker's main; :class:`ProcessCrash`
#: refuses to kill any process that does not carry it, so a chaos spec
#: that leaks into the wrong engine (or the test runner) is inert.
NODE_ENV_MARKER = "REPRO_NET_NODE"


class LinkFault(abc.ABC):
    """How one source link mistreats the frames crossing it.

    A fault maps each message to the list of *extra delays* of the copies
    that survive it: ``[]`` drops the message, ``[0.0]`` passes it
    unchanged, ``[0.0, 0.0]`` duplicates it.  Faults on a link compose in
    order, each applied to every surviving copy.  Instances may keep
    per-run state (:class:`CutAfter` counts messages), so build a fresh
    plan per run — :func:`plan_from_plane` does.
    """

    @abc.abstractmethod
    def deliveries(self, src: ProcessId, dst: ProcessId, rng: Random) -> list[float]:
        """Extra delays of the surviving copies of one message."""

    def clone(self) -> "LinkFault":
        """A fresh instance with pristine per-run state.

        Parallel-hub topologies (:mod:`repro.mesh`) project one link plan
        onto every hub; each hub is an independent enforcement point, so
        stateful faults (:class:`CutAfter`'s counter) must not share state
        across hubs.  The default deep-copies — correct for the stateless
        faults; stateful ones override to reset.
        """
        return copy.deepcopy(self)

    def describe(self) -> str:
        """One-line description for the event stream."""
        return ""


class DropLink(LinkFault):
    """Drop each message with probability ``probability`` (1.0 = dead link)."""

    def __init__(self, probability: float = 1.0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"drop probability {probability} outside [0, 1]")
        self.probability = probability

    def deliveries(self, src: ProcessId, dst: ProcessId, rng: Random) -> list[float]:
        if self.probability >= 1.0 or rng.random() < self.probability:
            return []
        return [0.0]

    def describe(self) -> str:
        return f"p={self.probability}"


class DelayLink(LinkFault):
    """Add ``extra`` seconds (plus uniform ``jitter``) to every message."""

    def __init__(self, extra: float, jitter: float = 0.0) -> None:
        if extra < 0.0 or jitter < 0.0:
            raise ValueError("link delay must be non-negative")
        self.extra = extra
        self.jitter = jitter

    def deliveries(self, src: ProcessId, dst: ProcessId, rng: Random) -> list[float]:
        return [self.extra + (rng.uniform(0.0, self.jitter) if self.jitter else 0.0)]

    def describe(self) -> str:
        return f"extra={self.extra}s"


class DuplicateLink(LinkFault):
    """Deliver ``copies`` of each message with probability ``probability``."""

    def __init__(self, probability: float = 1.0, copies: int = 2) -> None:
        if copies < 1:
            raise ValueError("a duplicated message has at least one copy")
        self.probability = probability
        self.copies = copies

    def deliveries(self, src: ProcessId, dst: ProcessId, rng: Random) -> list[float]:
        if self.probability >= 1.0 or rng.random() < self.probability:
            return [0.0] * self.copies
        return [0.0]

    def describe(self) -> str:
        return f"copies={self.copies}"


class ReorderLink(LinkFault):
    """Scramble arrival order: each message is independently held back by
    a random delay in ``[0, window]`` with probability ``probability``.

    A later message that draws no (or a smaller) extra delay overtakes an
    earlier one, so FIFO order on the link is destroyed while every
    message still arrives — pure reordering, the one asynchrony the
    existing drop/delay/duplicate faults never isolate.  Safety must be
    indifferent to it: an asynchronous-model algorithm's agreement
    argument never assumes link order.
    """

    def __init__(self, probability: float = 0.5, window: float = 0.005) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"reorder probability {probability} outside [0, 1]")
        if window <= 0.0:
            raise ValueError("reorder window must be positive")
        self.probability = probability
        self.window = window

    def deliveries(self, src: ProcessId, dst: ProcessId, rng: Random) -> list[float]:
        if self.probability >= 1.0 or rng.random() < self.probability:
            return [rng.uniform(0.0, self.window)]
        return [0.0]

    def describe(self) -> str:
        return f"p={self.probability}, window={self.window}s"


class CutAfter(LinkFault):
    """Pass the first ``budget`` messages, then cut the link forever.

    The transport projection of :class:`~repro.engine.faults.Crash`: the
    first ``budget`` point-to-point messages get out, the rest die — the
    same "prefix of the broadcast escaped" asymmetry the message-budget
    wrappers produce in-memory.
    """

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise ValueError("cut budget must be non-negative")
        self.budget = budget
        self._passed = 0

    def deliveries(self, src: ProcessId, dst: ProcessId, rng: Random) -> list[float]:
        if self._passed >= self.budget:
            return []
        self._passed += 1
        return [0.0]

    def clone(self) -> "CutAfter":
        return CutAfter(self.budget)

    def describe(self) -> str:
        return f"budget={self.budget}"


class LinkPlan:
    """The transport's full fault mapping: faults per source link.

    Args:
        per_source: fault chain applied to every frame *from* each pid.
        everywhere: fault chain applied to every frame on every link
            (after the per-source chain) — ambient loss/delay/duplication.
    """

    def __init__(
        self,
        per_source: Mapping[ProcessId, Sequence[LinkFault]] | None = None,
        everywhere: Sequence[LinkFault] = (),
    ) -> None:
        self.per_source = {pid: list(chain) for pid, chain in (per_source or {}).items()}
        self.everywhere = list(everywhere)

    def __bool__(self) -> bool:
        return bool(self.per_source) or bool(self.everywhere)

    def chain_for(self, src: ProcessId) -> Iterable[LinkFault]:
        yield from self.per_source.get(src, ())
        yield from self.everywhere

    def route(self, src: ProcessId, dst: ProcessId, rng: Random) -> list[float]:
        """Extra delays of the copies that survive the link, ``[]`` = dropped."""
        copies = [0.0]
        for fault in self.chain_for(src):
            if not copies:
                return copies
            copies = [
                base + extra
                for base in copies
                for extra in fault.deliveries(src, dst, rng)
            ]
        return copies

    def project(self, hub: int) -> "LinkPlan":
        """This plan's projection onto one hub of a parallel-hub mesh.

        Same per-source/everywhere structure, fresh fault instances
        (:meth:`LinkFault.clone`): every hub enforces the plan on the
        frames *it* owns with its own state and its own seeded RNG stream,
        so multi-hub runs stay deterministic regardless of how traffic
        interleaves across hubs.  Note the semantics this fixes for
        stateful faults: a :class:`CutAfter` budget counts per owning hub,
        matching "the link out of this node dies after ``b`` messages" as
        observed at each enforcement point.  ``hub`` is taken for the
        call-site's readability; the projection itself is hub-agnostic.
        """
        del hub
        return LinkPlan(
            {pid: [f.clone() for f in chain] for pid, chain in self.per_source.items()},
            [f.clone() for f in self.everywhere],
        )

    def describe(self) -> dict[ProcessId, str]:
        """Per-source one-liners for fault announcement on the event stream."""
        out: dict[ProcessId, str] = {}
        for pid, chain in sorted(self.per_source.items()):
            out[pid] = ", ".join(
                f"{type(f).__name__}({f.describe()})" for f in chain
            )
        return out


def plan_from_plane(plane: FaultPlane) -> LinkPlan:
    """Project a fault plane's crash-model faults onto link behaviors.

    ``Silent`` becomes a dead source link, ``Crash(budget)`` a
    :class:`CutAfter`.  Byzantine faults are skipped, not rejected (unlike
    :meth:`FaultPlane.crash_schedule`): on this engine they are enforced by
    the wrapper protocols running inside the node processes, and the link
    carries their traffic untouched.
    """
    per_source: dict[ProcessId, list[LinkFault]] = {}
    for pid, fault in plane.faults.items():
        if isinstance(fault, Silent):
            per_source[pid] = [DropLink(1.0)]
        elif isinstance(fault, Crash):
            per_source[pid] = [CutAfter(fault.budget)]
    return LinkPlan(per_source=per_source)


@dataclass(frozen=True)
class ProcessCrash:
    """Unannounced chaos: the node's OS process dies abruptly mid-run.

    The process calls ``os._exit`` (no cleanup, no goodbye frame) once it
    has written ``after`` point-to-point messages — the send that would be
    message ``after + 1`` kills it instead.  ``after=0`` dies at the first
    send attempt.  Unlike every :class:`~repro.engine.faults.Fault`, this
    is invisible to the fault plane: the dead pid stays in the correct
    set, which is exactly the straggler regime the cluster's deadline and
    EOF handling must survive.

    ``restart_after`` turns the chaos crash into chaos *recovery*: the
    cluster notices the EOF and re-forks the worker that many seconds
    later (a durable protocol then replays its disk state and rejoins).
    ``None`` — the default, and the pinned legacy behavior — leaves the
    process dead forever.
    """

    after: int = 0
    exit_code: int = 17
    restart_after: float | None = None

    def maybe_kill(self, sent: int) -> None:
        """Kill the current process if its send budget is exhausted.

        Inert unless ``REPRO_NET_NODE`` is set in the environment — only a
        net-engine node worker may ever be killed, never the test runner
        or an in-memory backend that a chaos spec leaked into.
        """
        if sent >= self.after and os.environ.get(NODE_ENV_MARKER):
            os._exit(self.exit_code)
