"""The framed wire protocol of the socket engine: framing only.

Every frame on a link is::

    +----------------+---------+----------+-----------------+
    | length (4B BE) | version | codec id | payload (bytes) |
    +----------------+---------+----------+-----------------+

``length`` counts the body (version byte + codec byte + payload), so a
reader can always buffer exactly one frame without understanding it.  The
version byte rejects cross-version clusters at the first frame instead of
letting them mis-decode each other's payloads.

This module owns *framing* — length prefixes, size caps, version checks —
and nothing else.  Payload bytes are produced and consumed by
:mod:`repro.codec`; the codec byte of the header selects which codec, per
frame:

* ``CODEC_BINARY`` — the data plane: struct-packed records from the schema
  registry, relayable without decoding (see :class:`repro.codec.Opaque`).
* ``CODEC_PICKLE`` — legacy escape hatch; only safe because every peer is
  a process *we forked on this machine*.
* ``CODEC_JSON`` — JSON-safe payloads only; interop tests and eyeballing
  frames on the wire.

Each side announces its preferred codec in the hello frame
(:attr:`Hello.codec`) and the hub honors it per connection, so mixed-codec
clusters work: the frame header, not the cluster config, is authoritative
for every frame.

Size caps are enforced on both sides: :func:`encode_frame` refuses to
build an oversized frame and :class:`FrameDecoder` rejects an oversized
*declared* length before buffering a single payload byte, so a garbage or
hostile length prefix cannot balloon memory.

:class:`FrameDecoder` is sans-IO: feed it whatever ``recv`` returned —
half a header, three frames and a tail, one byte at a time — and it yields
exactly the complete frames.  :meth:`FrameDecoder.eof` distinguishes a
clean end-of-stream from a peer that died mid-frame.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..codec import CODEC_BINARY, CODEC_JSON, CODEC_PICKLE, CodecError, codec_for
from ..codec.schema import wire_record
from ..errors import ReproError
from ..runtime.effects import ServiceCall
from ..types import ProcessId

__all__ = [
    "WIRE_VERSION",
    "CODEC_PICKLE",
    "CODEC_JSON",
    "CODEC_BINARY",
    "DEFAULT_MAX_FRAME",
    "DELIVERY_BATCH_CHUNK",
    "WireError",
    "FrameTooLarge",
    "TruncatedStream",
    "encode_frame",
    "encode_frame_into",
    "batch_frames",
    "FrameDecoder",
    "Hello",
    "Start",
    "Stop",
    "MsgSend",
    "MsgDeliver",
    "MsgDeliverBatch",
    "MsgDecide",
    "MsgOutput",
    "MsgService",
    "MsgLog",
]

#: Protocol version carried in every frame header.
WIRE_VERSION = 1

#: Default cap on the frame body; a consensus payload is a few hundred
#: bytes, so anything near this is a bug or an attack, not traffic.
DEFAULT_MAX_FRAME = 1 << 20

_LENGTH = struct.Struct("!I")
_HEADER_BYTES = 2  # version + codec id


class WireError(ReproError):
    """A frame violated the wire protocol (version, codec, or framing)."""


class FrameTooLarge(WireError):
    """A frame exceeded the configured size cap (refused on both sides)."""


class TruncatedStream(WireError):
    """The stream ended mid-frame (the peer died while writing)."""


def encode_frame_into(
    obj: Any,
    buf: bytearray,
    codec: int = CODEC_PICKLE,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> None:
    """Append one complete wire frame for ``obj`` to ``buf``.

    The buffer-reuse entry point: hot loops (the hub's delivery sweep, the
    node's send path) encode straight into one reusable bytearray and hand
    it to ``sendall``, instead of allocating per-frame ``bytes``.  On
    failure the buffer is restored to its original length, so a caller
    coalescing many frames can fall back per-frame.

    Raises:
        FrameTooLarge: the encoded body exceeds ``max_frame``.
        WireError: unknown codec id.
    """
    try:
        payload_codec = codec_for(codec)
    except CodecError as exc:
        raise WireError(str(exc)) from None
    start = len(buf)
    buf += b"\x00\x00\x00\x00"  # length backpatched below
    buf.append(WIRE_VERSION)
    buf.append(codec)
    try:
        payload_codec.encode_into(obj, buf)
    except Exception:
        del buf[start:]
        raise
    body_len = len(buf) - start - _LENGTH.size
    if body_len > max_frame:
        del buf[start:]
        raise FrameTooLarge(
            f"frame body of {body_len} bytes exceeds the cap of {max_frame}"
        )
    _LENGTH.pack_into(buf, start, body_len)


def encode_frame(
    obj: Any, codec: int = CODEC_PICKLE, max_frame: int = DEFAULT_MAX_FRAME
) -> bytes:
    """Encode one message as a complete wire frame.

    Raises:
        FrameTooLarge: the encoded body exceeds ``max_frame``.
        WireError: unknown codec id.
    """
    buf = bytearray()
    encode_frame_into(obj, buf, codec, max_frame)
    return bytes(buf)


class FrameDecoder:
    """Incremental frame parser for one direction of one link.

    Feed raw socket bytes with :meth:`feed`; complete frames come out
    decoded, in order.  The decoder owns the protocol checks: declared
    length against the cap *before* buffering, version byte, codec byte.

    Args:
        max_frame: size cap on the frame body (must match the writer's).
        lazy: relay mode — binary-codec blob fields decode as
            :class:`repro.codec.Opaque` spans instead of objects, so the
            hub can forward payloads without materializing them.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME, lazy: bool = False) -> None:
        self.max_frame = max_frame
        self.lazy = lazy
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> Iterator[Any]:
        """Absorb ``data`` and yield every frame it completes.

        Raises:
            FrameTooLarge: a declared body length exceeds the cap (raised
                as soon as the length prefix is readable, without waiting
                for — or buffering — the oversized body).
            WireError: version mismatch or unknown codec id.
        """
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LENGTH.size:
                return
            (body_len,) = _LENGTH.unpack_from(self._buffer)
            if body_len > self.max_frame:
                raise FrameTooLarge(
                    f"peer declared a {body_len}-byte frame; cap is {self.max_frame}"
                )
            if body_len < _HEADER_BYTES:
                raise WireError(f"frame body of {body_len} bytes is too short")
            total = _LENGTH.size + body_len
            if len(self._buffer) < total:
                return
            version = self._buffer[_LENGTH.size]
            codec = self._buffer[_LENGTH.size + 1]
            payload = bytes(self._buffer[_LENGTH.size + _HEADER_BYTES : total])
            del self._buffer[:total]
            if version != WIRE_VERSION:
                raise WireError(
                    f"wire version mismatch: peer speaks v{version}, "
                    f"this end speaks v{WIRE_VERSION}"
                )
            try:
                payload_codec = codec_for(codec, lazy=self.lazy)
            except CodecError:
                raise WireError(f"unknown codec id {codec}") from None
            yield payload_codec.decode(payload)

    def eof(self) -> None:
        """Signal end-of-stream; raises if the peer died mid-frame.

        Raises:
            TruncatedStream: bytes of an incomplete frame were buffered.
        """
        if self._buffer:
            raise TruncatedStream(
                f"stream ended with {len(self._buffer)} bytes of an incomplete frame"
            )


# -- wire message vocabulary ---------------------------------------------------------
#
# The control-plane messages exchanged between the hub and its nodes.
# Frozen + slotted for the same reasons as the effects; registered in the
# codec schema so the binary codec struct-packs them.  ``MsgSend.payload``
# and ``MsgDeliver.payload`` are blob fields: the hub relays them as
# opaque spans without decoding (the data-plane fast path).


@wire_record(tag=1)
@dataclass(frozen=True, slots=True)
class Hello:
    """Node → hub: first frame after connecting; identifies the node.

    ``codec`` announces the codec the node will write and wants to read;
    the hub honors it per connection (``0`` = use the hub's default, which
    is also what legacy pickled hellos decode to)."""

    pid: ProcessId
    codec: int = 0


@wire_record(tag=2)
@dataclass(frozen=True, slots=True)
class Start:
    """Hub → node: run ``on_start`` and begin processing deliveries."""


@wire_record(tag=3)
@dataclass(frozen=True, slots=True)
class Stop:
    """Hub → node: the run is over; exit cleanly."""


@wire_record(tag=4, blobs=("payload",))
@dataclass(frozen=True, slots=True)
class MsgSend:
    """Node → hub: ship ``payload`` to ``dst`` (src is link-authenticated:
    the hub overrides it with the connection's pid, so a Byzantine node
    cannot forge another sender's identity — same link model as §2.1)."""

    src: ProcessId
    dst: ProcessId
    payload: Any
    depth: int


@wire_record(tag=5, blobs=("payload",))
@dataclass(frozen=True, slots=True)
class MsgDeliver:
    """Hub → node: one message delivery."""

    sender: ProcessId
    payload: Any
    depth: int


@wire_record(tag=6)
@dataclass(frozen=True, slots=True)
class MsgDeliverBatch:
    """Hub → node: several co-scheduled deliveries in one frame.

    When many queued messages for one destination come due in the same
    delivery sweep (typical for multiplexed workloads: every instance's
    quorum traffic lands together), the hub coalesces them instead of
    paying per-message framing and syscall costs.  Entries are
    ``(sender, payload, depth)`` in delivery order — the node processes
    them exactly as consecutive :class:`MsgDeliver` frames.  Payloads may
    be :class:`repro.codec.Opaque` spans on the hub side; they encode by
    splicing and always decode materialized on the node side.
    """

    entries: tuple[tuple[ProcessId, Any, int], ...]


@wire_record(tag=7)
@dataclass(frozen=True, slots=True)
class MsgDecide:
    """Node → hub: the hosted protocol decided (first decision only)."""

    pid: ProcessId
    value: Any
    kind: Any
    step: int


@wire_record(tag=8)
@dataclass(frozen=True, slots=True)
class MsgOutput:
    """Node → hub: a top-level protocol upcall (e.g. an IDB delivery)."""

    pid: ProcessId
    tag: str
    sender: ProcessId
    value: Any


@wire_record(tag=9)
@dataclass(frozen=True, slots=True)
class MsgService:
    """Node → hub: invoke a trusted service (services live at the hub —
    they model shared abstractions, e.g. the §2.2 oracle consensus, and
    must aggregate calls across processes)."""

    pid: ProcessId
    call: ServiceCall
    depth: int


@wire_record(tag=10)
@dataclass(frozen=True, slots=True)
class MsgLog:
    """Node → hub: a structured trace record."""

    pid: ProcessId
    event: str
    data: dict[str, Any] = field(default_factory=dict)


#: Deliveries coalesced into one frame at most — keeps a batched frame far
#: below the frame size cap even with large consensus payloads.
DELIVERY_BATCH_CHUNK = 32


def batch_frames(
    entries: list[tuple[ProcessId, Any, int]],
) -> tuple[list[Any], list[list[tuple[ProcessId, Any, int]]]]:
    """Chunk one destination's due deliveries into delivery frames.

    Returns ``(frames, per_frame)``: the frames to write — a lone delivery
    stays a :class:`MsgDeliver`, larger chunks coalesce into
    :class:`MsgDeliverBatch` capped at :data:`DELIVERY_BATCH_CHUNK` entries
    — and the entries behind each frame, so a caller falling back
    per-frame on :class:`FrameTooLarge` knows what every frame held.
    Shared by each hub implementation (the star hub and the mesh's hub
    group workers), so batching semantics cannot drift between them.
    """
    frames: list[Any] = []
    per_frame: list[list[tuple[ProcessId, Any, int]]] = []
    for at in range(0, len(entries), DELIVERY_BATCH_CHUNK):
        chunk = entries[at : at + DELIVERY_BATCH_CHUNK]
        if len(chunk) == 1:
            frames.append(MsgDeliver(*chunk[0]))
        else:
            frames.append(MsgDeliverBatch(tuple(chunk)))
        per_frame.append(chunk)
    return frames, per_frame
