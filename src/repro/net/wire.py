"""The framed wire protocol of the socket engine.

Every frame on a link is::

    +----------------+---------+----------+-----------------+
    | length (4B BE) | version | codec id | payload (bytes) |
    +----------------+---------+----------+-----------------+

``length`` counts the body (version byte + codec byte + payload), so a
reader can always buffer exactly one frame without understanding it.  The
version byte rejects cross-version clusters at the first frame instead of
letting them mis-decode each other's payloads, and the codec byte selects
the payload encoding:

* ``CODEC_PICKLE`` — the default; consensus payloads are arbitrary frozen
  dataclasses (proposals, envelopes, IDB messages), which JSON cannot
  round-trip.  Pickle is only safe because every peer is a process *we
  forked on this machine* — the engine runs trusted local clusters, not an
  open port.
* ``CODEC_JSON`` — JSON-safe payloads only; useful for interop tests and
  for eyeballing frames on the wire.

Size caps are enforced on both sides: :func:`encode_frame` refuses to
build an oversized frame and :class:`FrameDecoder` rejects an oversized
*declared* length before buffering a single payload byte, so a garbage or
hostile length prefix cannot balloon memory.

:class:`FrameDecoder` is sans-IO: feed it whatever ``recv`` returned —
half a header, three frames and a tail, one byte at a time — and it yields
exactly the complete frames.  :meth:`FrameDecoder.eof` distinguishes a
clean end-of-stream from a peer that died mid-frame.
"""

from __future__ import annotations

import json
import pickle
import struct
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import ReproError
from ..runtime.effects import ServiceCall
from ..types import ProcessId

#: Protocol version carried in every frame header.
WIRE_VERSION = 1

#: Codec identifiers (the codec byte of the frame header).
CODEC_PICKLE = 1
CODEC_JSON = 2

#: Default cap on the frame body; a consensus payload is a few hundred
#: bytes, so anything near this is a bug or an attack, not traffic.
DEFAULT_MAX_FRAME = 1 << 20

_LENGTH = struct.Struct("!I")
_HEADER_BYTES = 2  # version + codec id


class WireError(ReproError):
    """A frame violated the wire protocol (version, codec, or framing)."""


class FrameTooLarge(WireError):
    """A frame exceeded the configured size cap (refused on both sides)."""


class TruncatedStream(WireError):
    """The stream ended mid-frame (the peer died while writing)."""


def _encode_payload(obj: Any, codec: int) -> bytes:
    if codec == CODEC_PICKLE:
        return pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
    if codec == CODEC_JSON:
        return json.dumps(obj, separators=(",", ":")).encode("utf-8")
    raise WireError(f"unknown codec id {codec}")


def _decode_payload(data: bytes, codec: int) -> Any:
    if codec == CODEC_PICKLE:
        return pickle.loads(data)
    if codec == CODEC_JSON:
        return json.loads(data.decode("utf-8"))
    raise WireError(f"unknown codec id {codec}")


def encode_frame(
    obj: Any, codec: int = CODEC_PICKLE, max_frame: int = DEFAULT_MAX_FRAME
) -> bytes:
    """Encode one message as a complete wire frame.

    Raises:
        FrameTooLarge: the encoded body exceeds ``max_frame``.
        WireError: unknown codec id.
    """
    payload = _encode_payload(obj, codec)
    body_len = _HEADER_BYTES + len(payload)
    if body_len > max_frame:
        raise FrameTooLarge(
            f"frame body of {body_len} bytes exceeds the cap of {max_frame}"
        )
    return _LENGTH.pack(body_len) + bytes((WIRE_VERSION, codec)) + payload


class FrameDecoder:
    """Incremental frame parser for one direction of one link.

    Feed raw socket bytes with :meth:`feed`; complete frames come out
    decoded, in order.  The decoder owns the protocol checks: declared
    length against the cap *before* buffering, version byte, codec byte.

    Args:
        max_frame: size cap on the frame body (must match the writer's).
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> Iterator[Any]:
        """Absorb ``data`` and yield every frame it completes.

        Raises:
            FrameTooLarge: a declared body length exceeds the cap (raised
                as soon as the length prefix is readable, without waiting
                for — or buffering — the oversized body).
            WireError: version mismatch or unknown codec id.
        """
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LENGTH.size:
                return
            (body_len,) = _LENGTH.unpack_from(self._buffer)
            if body_len > self.max_frame:
                raise FrameTooLarge(
                    f"peer declared a {body_len}-byte frame; cap is {self.max_frame}"
                )
            if body_len < _HEADER_BYTES:
                raise WireError(f"frame body of {body_len} bytes is too short")
            total = _LENGTH.size + body_len
            if len(self._buffer) < total:
                return
            version = self._buffer[_LENGTH.size]
            codec = self._buffer[_LENGTH.size + 1]
            payload = bytes(self._buffer[_LENGTH.size + _HEADER_BYTES : total])
            del self._buffer[:total]
            if version != WIRE_VERSION:
                raise WireError(
                    f"wire version mismatch: peer speaks v{version}, "
                    f"this end speaks v{WIRE_VERSION}"
                )
            yield _decode_payload(payload, codec)

    def eof(self) -> None:
        """Signal end-of-stream; raises if the peer died mid-frame.

        Raises:
            TruncatedStream: bytes of an incomplete frame were buffered.
        """
        if self._buffer:
            raise TruncatedStream(
                f"stream ended with {len(self._buffer)} bytes of an incomplete frame"
            )


# -- wire message vocabulary ---------------------------------------------------------
#
# The control-plane messages exchanged between the hub and its nodes.  All
# of them travel pickled (CODEC_PICKLE): consensus payloads are arbitrary
# dataclasses.  Frozen + slotted for the same reasons as the effects.


@dataclass(frozen=True, slots=True)
class Hello:
    """Node → hub: first frame after connecting; identifies the node."""

    pid: ProcessId


@dataclass(frozen=True, slots=True)
class Start:
    """Hub → node: run ``on_start`` and begin processing deliveries."""


@dataclass(frozen=True, slots=True)
class Stop:
    """Hub → node: the run is over; exit cleanly."""


@dataclass(frozen=True, slots=True)
class MsgSend:
    """Node → hub: ship ``payload`` to ``dst`` (src is link-authenticated:
    the hub overrides it with the connection's pid, so a Byzantine node
    cannot forge another sender's identity — same link model as §2.1)."""

    src: ProcessId
    dst: ProcessId
    payload: Any
    depth: int


@dataclass(frozen=True, slots=True)
class MsgDeliver:
    """Hub → node: one message delivery."""

    sender: ProcessId
    payload: Any
    depth: int


@dataclass(frozen=True, slots=True)
class MsgDeliverBatch:
    """Hub → node: several co-scheduled deliveries in one frame.

    When many queued messages for one destination come due in the same
    delivery sweep (typical for multiplexed workloads: every instance's
    quorum traffic lands together), the hub coalesces them instead of
    paying per-message framing and syscall costs.  Entries are
    ``(sender, payload, depth)`` in delivery order — the node processes
    them exactly as consecutive :class:`MsgDeliver` frames.
    """

    entries: tuple[tuple[ProcessId, Any, int], ...]


@dataclass(frozen=True, slots=True)
class MsgDecide:
    """Node → hub: the hosted protocol decided (first decision only)."""

    pid: ProcessId
    value: Any
    kind: Any
    step: int


@dataclass(frozen=True, slots=True)
class MsgOutput:
    """Node → hub: a top-level protocol upcall (e.g. an IDB delivery)."""

    pid: ProcessId
    tag: str
    sender: ProcessId
    value: Any


@dataclass(frozen=True, slots=True)
class MsgService:
    """Node → hub: invoke a trusted service (services live at the hub —
    they model shared abstractions, e.g. the §2.2 oracle consensus, and
    must aggregate calls across processes)."""

    pid: ProcessId
    call: ServiceCall
    depth: int


@dataclass(frozen=True, slots=True)
class MsgLog:
    """Node → hub: a structured trace record."""

    pid: ProcessId
    event: str
    data: dict[str, Any] = field(default_factory=dict)
