"""Algorithm DEX — doubly-expedited adaptive Byzantine consensus (Figure 1).

DEX runs three decision schemes concurrently, generic over any *legal*
condition-sequence pair ``(S¹, S², P1, P2, F)``:

* **one-step** (lines 5–9): plain proposals accumulate in view ``J1``; with
  ``|J1| ≥ n − t`` and ``P1(J1)``, decide ``F(J1)`` at depth 1;
* **two-step** (lines 10–18): Identical-Broadcast deliveries accumulate in
  ``J2``; with ``|J2| ≥ n − t``, propose ``F(J2)`` to the underlying
  consensus (once), and with ``P2(J2)`` decide ``F(J2)`` at depth 2;
* **fallback** (lines 19–22): adopt the underlying consensus' decision.

Unlike prior one-step Byzantine algorithms, DEX keeps updating both views
after the ``n − t`` threshold — "DEX allows the processes to collect
messages from all correct processes.  This is the real secret of its
ability to provide fast termination for more number of inputs" (§4) — so
the predicates are re-evaluated on *every* later arrival, which is what
makes the conditions adaptive in the actual failure count.

The protocol requires ``n > 5t`` (paper §2.1); the embedded IDB needs only
``n > 4t``, and the chosen condition pair may require more (the frequency
pair needs ``n > 6t``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..broadcast.idb import DELIVER_TAG as IDB_DELIVER_TAG
from ..broadcast.idb import IdenticalBroadcast
from ..conditions.base import ConditionSequencePair
from ..conditions.incremental import ViewStats
from ..conditions.views import View
from ..errors import ConfigurationError, ResilienceError
from ..runtime.composite import CompositeProtocol
from ..runtime.effects import Broadcast, Decide, Deliver, Effect
from ..runtime.protocol import Protocol
from ..types import DecisionKind, ProcessId, SystemConfig, Value
from ..underlying.base import UC_DECIDE_TAG, UnderlyingConsensus
from ..underlying.oracle import OracleConsensus
from ..codec.schema import wire_record

#: Factory signature for the underlying consensus child ("uc" slot).
UcFactory = Callable[[ProcessId, SystemConfig], UnderlyingConsensus]

#: Factory signature for the identical-broadcast child ("idb" slot).  The
#: returned protocol must expose ``id_send(value) -> list[Effect]`` and
#: surface ``Deliver(tag=IDB_DELIVER_TAG, sender=origin, value=m)`` upcalls —
#: the default is the real witness-based :class:`IdenticalBroadcast`; the
#: model checker substitutes the trusted oracle abstraction
#: (:class:`repro.mc.abstraction.OracleIdb`) to shrink the schedule space
#: while keeping exactly the three IDB properties the DEX proof consumes.
IdbFactory = Callable[[ProcessId, SystemConfig], Protocol]


@wire_record(tag=16)
@dataclass(frozen=True, slots=True)
class DexProposal:
    """The plain (``P-Send``) proposal message of line 3."""

    value: Value


def _storable(value: Value) -> bool:
    """Views count values in hash tables; unhashable Byzantine payloads are
    rejected on arrival so they can never poison a view."""
    try:
        hash(value)
    except TypeError:
        return False
    return True


class DexConsensus(CompositeProtocol):
    """One process's DEX instance.

    Args:
        process_id: hosting process.
        config: must satisfy ``n > 5t``.
        pair: a legal condition-sequence pair built for the same ``(n, t)``.
        proposal: this process's initial value ``v_i``.
        uc_factory: builds the underlying-consensus child; defaults to the
            oracle abstraction (:class:`~repro.underlying.oracle.OracleConsensus`
            on service ``"oracle-uc"``).  Pass a
            :class:`~repro.underlying.multivalued.MultivaluedConsensus`
            factory for a fully trusted-component-free run.
        idb_factory: builds the identical-broadcast child; defaults to the
            witness-based :class:`~repro.broadcast.idb.IdenticalBroadcast`.
            The model checker passes the oracle-IDB abstraction here.
        enforce_resilience: when False, skip the ``n > 5t`` check.  Used by
            the model checker to *demonstrate* what goes wrong below the
            bound (EXPERIMENTS.md E17); production runs keep it on.
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        pair: ConditionSequencePair,
        proposal: Value,
        uc_factory: UcFactory | None = None,
        *,
        idb_factory: IdbFactory | None = None,
        enforce_resilience: bool = True,
    ) -> None:
        if enforce_resilience and not config.satisfies(5):
            raise ResilienceError("DEX", config.n, config.t, "n > 5t")
        if (pair.n, pair.t) != (config.n, config.t):
            raise ConfigurationError(
                f"condition pair built for (n={pair.n}, t={pair.t}) does not "
                f"match the system (n={config.n}, t={config.t})"
            )
        super().__init__(process_id, config)
        self.pair = pair
        self.proposal = proposal
        make_idb = idb_factory or (lambda pid, cfg: IdenticalBroadcast(pid, cfg))
        self._idb = self.add_child("idb", make_idb(process_id, config))
        make_uc = uc_factory or (lambda pid, cfg: OracleConsensus(pid, cfg))
        self._uc = self.add_child("uc", make_uc(process_id, config))
        # Running statistics instead of raw entry lists: every quantity the
        # re-evaluated predicates need is maintained in O(1) per arrival.
        self._stats1 = ViewStats(config.n)
        self._stats2 = ViewStats(config.n)
        self.decided = False
        self.decision_kind: DecisionKind | None = None

    # -- observability -----------------------------------------------------------

    @property
    def view1(self) -> View:
        """Snapshot of the one-step view ``J1``."""
        return self._stats1.as_view()

    @property
    def view2(self) -> View:
        """Snapshot of the two-step (IDB) view ``J2``."""
        return self._stats2.as_view()

    @property
    def has_proposed_to_uc(self) -> bool:
        return self._uc.has_proposed

    # -- lines 1-4: Propose ---------------------------------------------------------

    def on_start(self) -> list[Effect]:
        self._stats1.set_entry(self.process_id, self.proposal)  # line 2
        self._stats2.set_entry(self.process_id, self.proposal)
        effects: list[Effect] = [Broadcast(DexProposal(self.proposal))]  # line 3
        effects.extend(self.child_call("idb", self._idb.id_send(self.proposal)))  # line 4
        return effects

    # -- lines 5-9: one-step scheme ----------------------------------------------------

    def on_own_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if not isinstance(payload, DexProposal):
            return [self.log("dex-ignored", sender=sender, payload=repr(payload))]
        if not _storable(payload.value):
            return [self.log("dex-unhashable-dropped", sender=sender)]
        self._stats1.set_entry(sender, payload.value)  # line 6 (binding write)
        if self.decided:
            return []
        return self._check_one_step()

    def _check_one_step(self) -> list[Effect]:
        stats = self._stats1
        if stats.known >= self.quorum and self.pair.p1_incremental(stats):
            return self._decide(
                self.pair.f_incremental(stats), DecisionKind.ONE_STEP  # line 8
            )
        return []

    # -- lines 10-22: two-step scheme and fallback ----------------------------------------

    def on_child_output(self, name: str, effect) -> list[Effect]:
        if not isinstance(effect, Deliver):
            return []
        if name == "idb" and effect.tag == IDB_DELIVER_TAG:
            return self._on_id_receive(effect.sender, effect.value)
        if name == "uc" and effect.tag == UC_DECIDE_TAG:
            return self._on_uc_decide(effect.value)
        return []

    def _on_id_receive(self, origin: ProcessId, value: Value) -> list[Effect]:
        if not _storable(value):
            return [self.log("dex-unhashable-dropped", sender=origin)]
        stats = self._stats2
        stats.set_entry(origin, value)  # line 11 (binding write)
        if stats.known < self.quorum:
            return []
        effects: list[Effect] = []
        if not self._uc.has_proposed:
            # lines 12-15: activate the underlying consensus exactly once —
            # even after a local fast decision, so the fallback of slower
            # processes sees the same proposal traffic.
            effects.extend(
                self.child_call("uc", self._uc.propose(self.pair.f_incremental(stats)))
            )
        if not self.decided and self.pair.p2_incremental(stats):
            effects.extend(
                self._decide(self.pair.f_incremental(stats), DecisionKind.TWO_STEP)  # line 17
            )
        return effects

    def _on_uc_decide(self, value: Value) -> list[Effect]:
        if self.decided:
            return []
        return self._decide(value, DecisionKind.UNDERLYING)  # line 21

    def _decide(self, value: Value, kind: DecisionKind) -> list[Effect]:
        self.decided = True
        self.decision_kind = kind
        return [Decide(value, kind)]
