"""The paper's primary contribution: algorithm DEX (Figure 1)."""

from .dex import DexConsensus, DexProposal, UcFactory

__all__ = ["DexConsensus", "DexProposal", "UcFactory"]
