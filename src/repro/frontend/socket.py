"""The socket-level frontend: external clients over UDS/TCP.

The in-process :class:`~repro.frontend.api.Frontend` is a library call;
this module puts the same admission-controlled submit path behind a real
socket, speaking the repo's one wire format — :mod:`repro.net.wire`
framing (4-byte length, version byte, codec byte) with payloads from the
:mod:`repro.codec` schema registry — so a client that is *not* one of our
forked replicas can drive the service.

Three client-facing records claim the fresh ``48–50`` tag block (the
blocks below 48 belong to wire control, protocol payloads, and durable
records):

* :class:`ClientSubmit` — client → frontend, one keyed operation;
* :class:`ClientReply` — frontend → client, the decided placement
  ``(shard, slot)`` for one request id;
* :class:`ClientRejected` — frontend → client, the admission verdict
  (``"shed"`` / ``"deadline"``) for one request id.

The session protocol is deliberately batch-shaped, matching the service's
run-to-completion execution model: the client streams ``ClientSubmit``
frames and half-closes its write side; the server admits each submit as
it arrives (ticking the frontend clock per configured stride, so
admission behaves exactly like the in-process path) and pushes
``ClientRejected`` frames immediately — sockets are full duplex — then,
at EOF, runs consensus once over everything admitted and streams one
``ClientReply`` per decided request before closing.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..codec import CODEC_BINARY
from ..codec.schema import wire_record
from ..errors import ConfigurationError
from ..net.wire import FrameDecoder, WireError, encode_frame_into
from .api import DecidedFuture, Frontend, FrontendReport

__all__ = [
    "ClientSubmit",
    "ClientReply",
    "ClientRejected",
    "FrontendServer",
    "SocketClient",
]


# -- client wire vocabulary -----------------------------------------------------------
#
# Tags 48-50: the client-facing block.  Frozen + slotted and registered in
# the schema, so the binary codec struct-packs them and the golden-frames
# fixture pins the bytes like every other record on the wire.


@wire_record(tag=48)
@dataclass(frozen=True, slots=True)
class ClientSubmit:
    """Client → frontend: submit one keyed operation.

    ``request_id`` is client-chosen and echoed back on the reply or
    rejection; ``op`` is the operation value (``set key := op``)."""

    request_id: int
    key: str
    op: int


@wire_record(tag=49)
@dataclass(frozen=True, slots=True)
class ClientReply:
    """Frontend → client: the submission decided at ``(shard, slot)``;
    ``latency`` is the client-observed latency in slot ticks."""

    request_id: int
    shard: int
    slot: int
    latency: int


@wire_record(tag=50)
@dataclass(frozen=True, slots=True)
class ClientRejected:
    """Frontend → client: the submission was rejected at admission
    (``reason`` is ``"shed"`` or ``"deadline"``)."""

    request_id: int
    reason: str
    shard: int


# -- server ---------------------------------------------------------------------------


class FrontendServer:
    """One admission-controlled frontend behind a listening socket.

    Args:
        frontend_factory: builds a fresh :class:`~repro.frontend.api.
            Frontend` per client session (the service runs to completion
            per session, so state is per-session too).
        path: UDS path to bind (the default transport).
        address: ``(host, port)`` to bind for TCP instead (pass port 0 to
            let the kernel pick; see :attr:`where` after :meth:`bind`).
        codec: wire codec id for server→client frames (client→server
            frames are self-describing per the frame header).
        tick_every: admission ticks advance once per this many submits —
            approximating arrival pacing for a client that streams a
            whole workload in one burst.
    """

    def __init__(
        self,
        frontend_factory: Callable[[], Frontend],
        path: str | None = None,
        address: tuple[str, int] | None = None,
        codec: int = CODEC_BINARY,
        tick_every: int = 4,
    ) -> None:
        if (path is None) == (address is None):
            raise ConfigurationError("pass exactly one of path (UDS) or address (TCP)")
        if tick_every < 1:
            raise ConfigurationError("tick_every must be at least 1")
        self.frontend_factory = frontend_factory
        self.path = path
        self.address = address
        self.codec = codec
        self.tick_every = tick_every
        self._listener: socket.socket | None = None
        #: where the listener actually bound (UDS path or ``(host, port)``).
        self.where: Any = None
        self.last_report: FrontendReport | None = None

    # -- lifecycle ---------------------------------------------------------------------

    def bind(self) -> Any:
        """Create and bind the listener; returns the bound address."""
        if self._listener is not None:
            return self.where
        if self.path is not None:
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.path)
            self.where = self.path
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind(self.address)
            self.where = listener.getsockname()
        listener.listen(1)
        self._listener = listener
        return self.where

    def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    # -- serving -----------------------------------------------------------------------

    def serve_once(self, timeout: float = 30.0) -> FrontendReport:
        """Accept one client session, run it to completion, and return the
        session's :class:`~repro.frontend.api.FrontendReport`."""
        self.bind()
        assert self._listener is not None
        self._listener.settimeout(timeout)
        sock, _ = self._listener.accept()
        try:
            return self._session(sock, timeout)
        finally:
            sock.close()

    def serve_once_in_thread(self, timeout: float = 30.0) -> threading.Thread:
        """Run :meth:`serve_once` on a daemon thread (bind first, so the
        client can connect immediately); the session's report lands in
        :attr:`last_report`."""
        self.bind()

        def run() -> None:
            self.last_report = self.serve_once(timeout)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread

    def _session(self, sock: socket.socket, timeout: float) -> FrontendReport:
        sock.settimeout(timeout)
        frontend = self.frontend_factory()
        decoder = FrameDecoder()
        out = bytearray()
        futures: dict[int, DecidedFuture] = {}
        submits = 0
        eof = False
        while not eof:
            data = sock.recv(65536)
            if not data:
                decoder.eof()
                break
            for frame in decoder.feed(data):
                if not isinstance(frame, ClientSubmit):
                    raise WireError(
                        f"unexpected client frame {type(frame).__name__}"
                    )
                if frame.request_id in futures:
                    raise WireError(f"duplicate request id {frame.request_id}")
                try:
                    future = frontend.submit(frame.key, frame.op)
                except ConfigurationError as exc:
                    # duplicate (key, op) command — client error, not ours
                    raise WireError(str(exc)) from None
                futures[frame.request_id] = future
                submits += 1
                if future.rejection is not None:
                    encode_frame_into(
                        ClientRejected(
                            frame.request_id,
                            future.rejection.reason,
                            future.rejection.shard,
                        ),
                        out,
                        self.codec,
                    )
                if submits % self.tick_every == 0:
                    frontend.tick()
            if out:
                sock.sendall(out)
                del out[:]
        report = frontend.run()
        for request_id, future in futures.items():
            if future.decided:
                encode_frame_into(
                    ClientReply(
                        request_id, future.shard, future.slot, future.latency
                    ),
                    out,
                    self.codec,
                )
            elif future.rejection is not None and future.rejection.reason != "shed":
                # deadline drops surface at drain time, after EOF.
                encode_frame_into(
                    ClientRejected(
                        request_id, future.rejection.reason, future.rejection.shard
                    ),
                    out,
                    self.codec,
                )
        if out:
            sock.sendall(out)
        sock.shutdown(socket.SHUT_WR)
        self.last_report = report
        return report


# -- client ---------------------------------------------------------------------------


class SocketClient:
    """A minimal batch client for :class:`FrontendServer`.

    Connects, streams every submit, half-closes the write side, and
    collects replies/rejections until the server closes — the whole
    session in one call (:meth:`submit_all`).
    """

    def __init__(
        self,
        path: str | None = None,
        address: tuple[str, int] | None = None,
        codec: int = CODEC_BINARY,
        timeout: float = 30.0,
    ) -> None:
        if (path is None) == (address is None):
            raise ConfigurationError("pass exactly one of path (UDS) or address (TCP)")
        self.path = path
        self.address = address
        self.codec = codec
        self.timeout = timeout

    def submit_all(
        self, commands: Iterable[tuple[str, int]]
    ) -> dict[int, ClientReply | ClientRejected]:
        """Run one session: submit ``(key, op)`` pairs (request ids are
        their positions) and return the outcome per request id."""
        if self.path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.path)
        else:
            sock = socket.create_connection(self.address, timeout=self.timeout)
        outcomes: dict[int, ClientReply | ClientRejected] = {}
        try:
            buf = bytearray()
            for request_id, (key, op) in enumerate(commands):
                encode_frame_into(ClientSubmit(request_id, key, op), buf, self.codec)
            if buf:
                sock.sendall(buf)
            sock.shutdown(socket.SHUT_WR)
            decoder = FrameDecoder()
            while True:
                data = sock.recv(65536)
                if not data:
                    decoder.eof()
                    break
                for frame in decoder.feed(data):
                    if isinstance(frame, (ClientReply, ClientRejected)):
                        outcomes[frame.request_id] = frame
                    else:
                        raise WireError(
                            f"unexpected server frame {type(frame).__name__}"
                        )
        finally:
            sock.close()
        return outcomes
