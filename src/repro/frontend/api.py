"""The client-facing submit API over the sharded consensus service.

This is the layer the literature's client-centric framing asks for
(hBFT's client-side speculation, the two-step lower-bound papers'
client-observed commit latency): clients :meth:`~Frontend.submit`
keyed operations and get a :class:`DecidedFuture`; the frontend routes
each command through :func:`~repro.shard.router.shard_of` into that
shard's :class:`~repro.frontend.admission.AdmissionQueue`, advances a
slot-aligned tick clock as load arrives, and finally pushes everything
the queues accepted through :meth:`ShardedService.run_stream
<repro.shard.service.ShardedService.run_stream>`.

Latency is *client-observed*: submit tick to decided slot, in slot
ticks — it includes queueing delay, which is the whole point.  The
consensus-only p50/p99 from :class:`~repro.shard.metrics.ShardStreamSink`
ride along in the embedded :class:`~repro.shard.service.ShardReport`, so
E22 can show both curves (queueing blows up at the knee; consensus
latency does not).

Typed ``frontend.submit`` / ``frontend.reject`` / ``frontend.reply``
events flow through the service's event sink (pid :data:`CLIENT`),
joining the same stream the engines emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..engine.events import EventSink, LogEvent
from ..errors import ConfigurationError, ReproError
from ..shard.router import shard_of
from ..shard.service import ShardedService, ShardReport
from .admission import AdmissionQueue, Rejected, ShedStats

__all__ = [
    "CLIENT",
    "SubmitRejected",
    "DecidedFuture",
    "FrontendReport",
    "Frontend",
]

#: The pseudo-pid frontend events carry (clients are not replicas).
CLIENT = -1


class SubmitRejected(ReproError):
    """Raised by :meth:`DecidedFuture.result` when the submission was
    shed or deadline-dropped instead of decided."""

    def __init__(self, rejection: Rejected) -> None:
        self.rejection = rejection
        super().__init__(
            f"submission rejected ({rejection.reason}) by shard "
            f"{rejection.shard} at queue depth {rejection.depth}"
        )


class DecidedFuture:
    """The client's handle on one submission.

    States: *pending* (queued or in flight) → *decided* (the command is
    in the agreed digest at ``(shard, slot)``) or *rejected* (shed at
    admission or deadline-dropped; see :attr:`rejection`).
    ``latency`` is client-observed, in slot ticks: decided slot minus
    submit tick.
    """

    __slots__ = ("command", "key", "shard", "submit_tick", "slot", "rejection")

    def __init__(self, command: tuple, shard: int, submit_tick: int) -> None:
        self.command = command
        self.key = command[1]
        self.shard = shard
        self.submit_tick = submit_tick
        self.slot: int | None = None
        self.rejection: Rejected | None = None

    @property
    def pending(self) -> bool:
        return self.slot is None and self.rejection is None

    @property
    def decided(self) -> bool:
        return self.slot is not None

    @property
    def latency(self) -> int | None:
        """Client-observed latency in slot ticks (``None`` until decided)."""
        if self.slot is None:
            return None
        return max(self.slot - self.submit_tick, 0)

    def result(self) -> tuple[int, int]:
        """``(shard, slot)`` of the decided command.

        Raises :class:`SubmitRejected` if the submission was rejected and
        :class:`~repro.errors.ReproError` if the run has not resolved it.
        """
        if self.rejection is not None:
            raise SubmitRejected(self.rejection)
        if self.slot is None:
            raise ReproError("submission still pending: run the frontend first")
        return self.shard, self.slot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.rejection is not None:
            state = f"rejected:{self.rejection.reason}"
        elif self.slot is not None:
            state = f"decided@s{self.shard}.{self.slot}"
        else:
            state = "pending"
        return f"DecidedFuture({self.command!r}, {state})"


@dataclass
class FrontendReport:
    """Outcome of one admission-controlled run.

    ``latencies`` holds one client-observed latency (slot ticks) per
    decided submission; ``per_shard`` one dict per shard with the queue's
    :class:`~repro.frontend.admission.ShedStats` counters; ``shard`` is
    the embedded consensus-side :class:`~repro.shard.service.ShardReport`.
    """

    policy: str
    queue_bound: int
    submitted: int
    accepted: int
    shed: int
    dropped: int
    decided: int
    ticks: int
    latencies: list[int] = field(default_factory=list)
    per_shard: list[dict[str, Any]] = field(default_factory=list)
    shard: ShardReport | None = None

    @property
    def shed_rate(self) -> float:
        """Fraction of submissions rejected (at the door or by deadline)."""
        if not self.submitted:
            return 0.0
        return (self.shed + self.dropped) / self.submitted

    @property
    def makespan_slots(self) -> int:
        """Longest shard log in the agreed digest (slots to drain it all)."""
        if self.shard is None or self.shard.digest is None:
            return 0
        return max(
            (len(batches) for _, batches in self.shard.digest), default=0
        )

    @property
    def throughput_cmds_per_slot(self) -> float:
        """Decided commands per slot of makespan — the plateau metric."""
        makespan = self.makespan_slots
        return self.decided / makespan if makespan else 0.0

    def latency_percentile(self, q: float) -> float | None:
        """The ``q``-quantile of client-observed latencies (slot ticks);
        ``None`` when nothing was decided (e.g. everything shed)."""
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return float(ordered[index])

    def summary(self) -> dict[str, Any]:
        """The headline numbers as one flat dict (for bench rows)."""
        p50 = self.latency_percentile(0.50)
        p99 = self.latency_percentile(0.99)
        return {
            "policy": self.policy,
            "queue_bound": self.queue_bound,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "shed": self.shed,
            "dropped": self.dropped,
            "decided": self.decided,
            "shed_rate": round(self.shed_rate, 4),
            "ticks": self.ticks,
            "makespan_slots": self.makespan_slots,
            "throughput_cmds_per_slot": round(self.throughput_cmds_per_slot, 3),
            "p50_client_latency_slots": p50,
            "p99_client_latency_slots": p99,
            "high_water": max(
                (row["high_water"] for row in self.per_shard), default=0
            ),
        }


class Frontend:
    """Admission-controlled submit frontend around a sharded service.

    Args:
        service: the :class:`~repro.shard.service.ShardedService` to feed
            (its ``rate`` is ignored — arrival pacing is the frontend's).
        queue_bound: per-shard admission-queue depth.
        policy: admission policy (see
            :data:`~repro.frontend.admission.POLICIES`).
        deadline: queue-wait bound in ticks for the ``"deadline"`` policy.

    The tick clock is slot-aligned: each :meth:`tick` drains at most
    ``service.max_batch`` commands per shard — the shard's per-slot batch
    capacity — into the accepted stream with the *dequeue* tick as the
    arrival slot, so queueing delay shows up as later arrival, exactly as
    it would for a real client waiting at a full server.
    """

    def __init__(
        self,
        service: ShardedService,
        queue_bound: int = 16,
        policy: str = "shed",
        deadline: int | None = None,
    ) -> None:
        self.service = service
        self.queue_bound = queue_bound
        self.policy = policy
        self.queues = {
            s: AdmissionQueue(s, queue_bound, policy, deadline)
            for s in range(service.shards)
        }
        self.now = 0
        self._seq = 0
        self._futures: dict[tuple, DecidedFuture] = {}
        self._accepted: list[tuple[int, tuple]] = []
        self._ran = False

    # -- events ------------------------------------------------------------------------

    def _emit(self, event: str, **data: Any) -> None:
        sink: EventSink | None = self.service.event_sink
        if sink is not None:
            sink.emit(LogEvent(float(self.now), CLIENT, event, data))

    # -- client side -------------------------------------------------------------------

    def submit(self, key: str, op: int | None = None) -> DecidedFuture:
        """Offer one ``set`` operation on ``key`` at the current tick.

        ``op`` defaults to a unique sequence number (commands must be
        distinct to be trackable through the agreed digest).  The returned
        future is resolved immediately on rejection, else by :meth:`run`.
        """
        if self._ran:
            raise ReproError("frontend already ran; build a fresh one")
        value = self._seq if op is None else op
        self._seq += 1
        command = ("set", key, value)
        if command in self._futures:
            raise ConfigurationError(f"duplicate command {command!r}")
        shard = shard_of(key, self.service.shards)
        future = DecidedFuture(command, shard, self.now)
        self._futures[command] = future
        self._emit("frontend.submit", key=key, shard=shard)
        rejection = self.queues[shard].offer(future, self.now)
        if rejection is not None:
            future.rejection = rejection
            self._emit(
                "frontend.reject",
                key=key,
                shard=shard,
                reason=rejection.reason,
                depth=rejection.depth,
            )
        return future

    # -- clock -------------------------------------------------------------------------

    def tick(self) -> int:
        """Advance one slot tick: each shard's queue serves up to the
        shard batch capacity into the accepted stream.  Returns the number
        of commands accepted this tick."""
        accepted = 0
        for shard in range(self.service.shards):
            queue = self.queues[shard]
            for future, _, rejection in queue.drain(self.now, self.service.max_batch):
                if rejection is not None:
                    future.rejection = rejection
                    self._emit(
                        "frontend.reject",
                        key=future.key,
                        shard=shard,
                        reason=rejection.reason,
                        depth=rejection.depth,
                    )
                    continue
                self._accepted.append((self.now, future.command))
                accepted += 1
        self.now += 1
        return accepted

    def drain(self) -> None:
        """Tick until every queue (and block-policy backlog) is empty."""
        while any(queue.pending for queue in self.queues.values()):
            self.tick()

    # -- service side ------------------------------------------------------------------

    def run(self, timeout: float = 30.0) -> FrontendReport:
        """Drain the queues, run the accepted stream through consensus,
        resolve every future, and assemble the report."""
        if self._ran:
            raise ReproError("frontend already ran; build a fresh one")
        self._ran = True
        self.drain()
        submit_ticks = self.now
        report = self.service.run_stream(list(self._accepted), timeout=timeout)
        latencies: list[int] = []
        decided = 0
        if report.digest is not None and not report.divergence:
            for shard, batches in report.digest:
                for slot, batch in enumerate(batches):
                    for command in batch:
                        future = self._futures.get(command)
                        if future is None or not future.pending:
                            continue
                        future.slot = slot
                        decided += 1
                        latencies.append(future.latency)
                        self._emit(
                            "frontend.reply",
                            key=future.key,
                            shard=shard,
                            slot=slot,
                            latency=future.latency,
                        )
        stats = {s: self.queues[s].stats() for s in range(self.service.shards)}
        return FrontendReport(
            policy=self.policy,
            queue_bound=self.queue_bound,
            submitted=sum(st.submitted for st in stats.values()),
            accepted=len(self._accepted),
            shed=sum(st.shed for st in stats.values()),
            dropped=sum(st.dropped for st in stats.values()),
            decided=decided,
            ticks=submit_ticks,
            latencies=latencies,
            per_shard=[
                {"shard": s, **_stats_row(stats[s])}
                for s in range(self.service.shards)
            ],
            shard=report,
        )


def _stats_row(stats: ShedStats) -> dict[str, Any]:
    return {
        "submitted": stats.submitted,
        "shed": stats.shed,
        "dequeued": stats.dequeued,
        "dropped": stats.dropped,
        "pending": stats.pending,
        "high_water": stats.high_water,
        "shed_rate": round(stats.shed_rate, 4),
    }
