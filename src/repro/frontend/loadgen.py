"""Seeded load generation against the frontend: the saturation experiment.

Two canonical client models drive :class:`~repro.frontend.api.Frontend`:

* **open loop** — arrivals are a Poisson process at ``offered`` commands
  per slot tick, independent of service progress (the model under which
  the classic saturation curve is defined: past capacity the queues grow,
  latency goes super-linear, and the shed rate turns positive);
* **closed loop** — a fixed window of ``clients`` keeps that many
  submissions outstanding and each client only re-submits after its slot
  is freed, so offered load self-paces to capacity and nothing sheds —
  the comparison mode E22 plots against the open loop.

Everything derives from ``random.Random`` seeded by pure integer
arithmetic (no string hashing), so the same seed produces the identical
arrival stream — and therefore identical accepted/shed counts and
digests — on every run of the sim engine.

:func:`saturation_sweep` runs one open-loop cell per offered load over
fresh service/frontend pairs and emits flat row dicts (client p50/p99,
throughput, shed rate, queue high-water, consensus-side latencies, digest
checksum) — the data behind ``BENCH_frontend.json`` and the E22 plot.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError
from ..shard.service import SKEWS, ShardedService
from .api import Frontend, FrontendReport

__all__ = [
    "poisson",
    "KeyPicker",
    "LoadGenerator",
    "saturation_sweep",
]


def poisson(rng: random.Random, lam: float) -> int:
    """One Poisson(``lam``) draw (Knuth's product-of-uniforms method —
    exact, dependency-free, and fast enough for per-tick rates)."""
    if lam <= 0.0:
        return 0
    threshold = math.exp(-lam)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


class KeyPicker:
    """Seeded key chooser mirroring :func:`~repro.shard.service.
    shard_workload`'s skew models (``uniform`` / ``zipf``)."""

    def __init__(
        self,
        rng: random.Random,
        keyspace: int = 32,
        skew: str = "uniform",
        zipf_alpha: float = 1.2,
    ) -> None:
        if keyspace < 1:
            raise ConfigurationError("need at least one key")
        if skew not in SKEWS:
            raise ConfigurationError(
                f"unknown skew {skew!r} (one of: {', '.join(SKEWS)})"
            )
        self.rng = rng
        self.keys = [f"k{i}" for i in range(keyspace)]
        self.weights = (
            [1.0 / (rank + 1) ** zipf_alpha for rank in range(keyspace)]
            if skew == "zipf"
            else None
        )

    def pick(self) -> str:
        if self.weights is None:
            return self.keys[self.rng.randrange(len(self.keys))]
        return self.rng.choices(self.keys, self.weights)[0]


class LoadGenerator:
    """Seeded client-model driver.

    Args:
        keyspace, skew, zipf_alpha: key distribution (as in the shard
            workload generator).
        seed: master seed; each cell derives its own PRNG from
            ``(seed, cell parameters)`` by integer arithmetic, so sweeps
            are reproducible cell by cell.
    """

    def __init__(
        self,
        keyspace: int = 32,
        skew: str = "uniform",
        zipf_alpha: float = 1.2,
        seed: int = 0,
    ) -> None:
        self.keyspace = keyspace
        self.skew = skew
        self.zipf_alpha = zipf_alpha
        self.seed = seed

    def _picker(self, salt: int) -> KeyPicker:
        rng = random.Random((self.seed + 1) * 1_000_003 + salt)
        return KeyPicker(rng, self.keyspace, self.skew, self.zipf_alpha)

    def open_loop(
        self,
        frontend: Frontend,
        offered: float,
        ticks: int,
        timeout: float = 30.0,
    ) -> FrontendReport:
        """Poisson arrivals at ``offered`` commands per tick for ``ticks``
        ticks, then run the accepted stream through consensus."""
        if offered < 0.0:
            raise ConfigurationError("offered load must be non-negative")
        if ticks < 1:
            raise ConfigurationError("need at least one tick")
        salt = int(offered * 1_000) * 31 + ticks
        picker = self._picker(salt)
        arrivals = random.Random((self.seed + 1) * 999_983 + salt)
        for _ in range(ticks):
            for _ in range(poisson(arrivals, offered)):
                frontend.submit(picker.pick())
            frontend.tick()
        return frontend.run(timeout=timeout)

    def closed_loop(
        self,
        frontend: Frontend,
        clients: int,
        total: int,
        timeout: float = 30.0,
    ) -> FrontendReport:
        """A window of ``clients`` outstanding submissions, re-filled as
        the queues drain, until ``total`` commands were submitted — load
        self-paces to capacity, so nothing sheds (size the queue bound to
        at least the window)."""
        if clients < 1:
            raise ConfigurationError("need at least one client")
        if total < 0:
            raise ConfigurationError("total must be non-negative")
        picker = self._picker(clients * 31 + total)
        remaining = total
        while remaining or any(q.pending for q in frontend.queues.values()):
            outstanding = sum(q.pending for q in frontend.queues.values())
            while remaining and outstanding < clients:
                frontend.submit(picker.pick())
                remaining -= 1
                outstanding += 1
            frontend.tick()
        return frontend.run(timeout=timeout)


def digest_checksum(report: FrontendReport) -> int:
    """CRC-32 of the agreed digest — a compact determinism witness (same
    seed ⇒ same checksum) that is stable across processes (tuple ``repr``,
    no string hashing)."""
    if report.shard is None or report.shard.digest is None:
        return 0
    return zlib.crc32(repr(report.shard.digest).encode("ascii"))


def saturation_sweep(
    service_factory: Callable[[], ShardedService],
    offered_loads: Sequence[float],
    ticks: int = 32,
    queue_bound: int = 16,
    policy: str = "shed",
    deadline: int | None = None,
    keyspace: int = 32,
    skew: str = "uniform",
    zipf_alpha: float = 1.2,
    seed: int = 0,
    timeout: float = 30.0,
) -> list[dict[str, Any]]:
    """One open-loop cell per offered load, each over a fresh service.

    Returns flat row dicts: the frontend summary (client p50/p99 in slot
    ticks, shed rate, throughput plateau, queue high-water) joined with
    the consensus-side aggregate latencies and a digest checksum.
    """
    generator = LoadGenerator(
        keyspace=keyspace, skew=skew, zipf_alpha=zipf_alpha, seed=seed
    )
    rows: list[dict[str, Any]] = []
    for offered in offered_loads:
        frontend = Frontend(
            service_factory(),
            queue_bound=queue_bound,
            policy=policy,
            deadline=deadline,
        )
        report = generator.open_loop(frontend, offered, ticks, timeout=timeout)
        aggregate = report.shard.aggregate if report.shard else {}
        rows.append(
            {
                "offered_per_tick": offered,
                **report.summary(),
                "consensus_p50_latency": aggregate.get("p50_decision_latency_s"),
                "consensus_p99_latency": aggregate.get("p99_decision_latency_s"),
                "one_step_frac": aggregate.get("one_step_frac"),
                "divergence": bool(report.shard.divergence) if report.shard else None,
                "digest_crc32": digest_checksum(report),
            }
        )
    return rows
