"""Client-facing service frontend: submit API, admission control, load
generation, and the socket-level client protocol.

The production face of the sharded service (ROADMAP's "millions of
users" north star): clients submit keyed operations through bounded
per-shard admission queues (:mod:`~repro.frontend.admission`), get
:class:`~repro.frontend.api.DecidedFuture` handles back
(:mod:`~repro.frontend.api`), and seeded open/closed-loop generators
(:mod:`~repro.frontend.loadgen`) sweep offered load to measure the
saturation curve — client-observed p50/p99 versus throughput, shed rate
past the knee (experiment E22).  :mod:`~repro.frontend.socket` puts the
same path behind a UDS/TCP socket speaking the registry wire format.
"""

from .admission import POLICIES, AdmissionQueue, Rejected, ShedStats
from .api import CLIENT, DecidedFuture, Frontend, FrontendReport, SubmitRejected
from .loadgen import (
    KeyPicker,
    LoadGenerator,
    digest_checksum,
    poisson,
    saturation_sweep,
)
from .socket import (
    ClientRejected,
    ClientReply,
    ClientSubmit,
    FrontendServer,
    SocketClient,
)

__all__ = [
    "POLICIES",
    "AdmissionQueue",
    "Rejected",
    "ShedStats",
    "CLIENT",
    "DecidedFuture",
    "Frontend",
    "FrontendReport",
    "SubmitRejected",
    "KeyPicker",
    "LoadGenerator",
    "digest_checksum",
    "poisson",
    "saturation_sweep",
    "ClientSubmit",
    "ClientReply",
    "ClientRejected",
    "FrontendServer",
    "SocketClient",
]
