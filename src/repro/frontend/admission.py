"""Per-shard admission queues: the capacity boundary of the service.

A production consensus service does not have infinite capacity — each
shard decides at most ``max_batch`` commands per slot — so a client-facing
frontend needs an explicit *admission* layer between the offered load and
the replicated logs.  This module is that layer, deliberately framed in
textbook queueing terms so the saturation benchmarks (E22) measure the
classic curve:

* every shard owns one :class:`AdmissionQueue` of bounded depth;
* arrivals past the bound are handled by the configured
  :data:`policy <POLICIES>` — ``"shed"`` rejects at the door with a
  :class:`Rejected` record (load shedding: the open-loop answer),
  ``"block"`` parks the overflow in a client-side backlog that refills
  the queue as it drains (backpressure: latency grows without bound past
  saturation but nothing is lost), and ``"deadline"`` admits like
  ``shed`` but additionally drops commands whose queue wait exceeded
  their deadline at dequeue time (staleness shedding);
* each slot tick the service drains at most ``rate`` commands per shard
  (its batch capacity), so queue dynamics — depth, high-water mark, wait
  time — are fully determined by the seeded arrival stream.

Accounting is conservation-checked (and hypothesis-tested): every
submitted command is in exactly one of *shed*, *dequeued*, *dropped* or
*pending*, FIFO order among admitted commands is preserved per shard, and
the bounded depth is never exceeded.  :class:`ShedStats` snapshots the
counters for reports and events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import ConfigurationError

__all__ = [
    "POLICIES",
    "Rejected",
    "ShedStats",
    "AdmissionQueue",
]

#: Admission policies: what happens to an arrival when the queue is full.
POLICIES = ("block", "shed", "deadline")


@dataclass(frozen=True, slots=True)
class Rejected:
    """Why a submission did not reach consensus.

    Attributes:
        reason: ``"shed"`` (queue full at arrival) or ``"deadline"``
            (queue wait exceeded the deadline before dequeue).
        shard: the shard whose queue rejected it.
        depth: that queue's depth at rejection time.
    """

    reason: str
    shard: int
    depth: int


@dataclass(frozen=True, slots=True)
class ShedStats:
    """Counter snapshot of one admission queue (conservation holds:
    ``submitted == shed + dequeued + dropped + pending``)."""

    submitted: int
    shed: int
    dequeued: int
    dropped: int
    pending: int
    high_water: int

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted commands rejected (shed + deadline)."""
        if not self.submitted:
            return 0.0
        return (self.shed + self.dropped) / self.submitted


class AdmissionQueue:
    """One shard's bounded FIFO admission queue.

    Args:
        shard: shard id (only used in :class:`Rejected` records).
        bound: maximum queue depth; arrivals past it hit the policy.
        policy: one of :data:`POLICIES`.
        deadline: maximum queue wait in ticks before a ``"deadline"``
            policy drops a command at dequeue time (ignored otherwise).

    Entries are ``(item, enqueue_tick)``; :meth:`drain` pops at most the
    shard's per-tick service rate in FIFO order.  With ``"block"`` the
    overflow waits in an unbounded *backlog* that refills the queue as it
    drains — the bounded depth invariant covers the queue proper, while
    ``pending`` (and latency) counts both.
    """

    def __init__(
        self,
        shard: int,
        bound: int,
        policy: str = "shed",
        deadline: int | None = None,
    ) -> None:
        if bound < 1:
            raise ConfigurationError("admission queue bound must be at least 1")
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown admission policy {policy!r} (one of: {', '.join(POLICIES)})"
            )
        if policy == "deadline" and (deadline is None or deadline < 0):
            raise ConfigurationError(
                "the deadline policy needs a non-negative deadline (in ticks)"
            )
        self.shard = shard
        self.bound = bound
        self.policy = policy
        self.deadline = deadline
        self._queue: deque[tuple[Any, int]] = deque()
        self._backlog: deque[tuple[Any, int]] = deque()
        self.submitted = 0
        self.shed = 0
        self.dequeued = 0
        self.dropped = 0
        self.high_water = 0

    # -- state -------------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Commands in the bounded queue proper (``<= bound`` always)."""
        return len(self._queue)

    @property
    def backlog(self) -> int:
        """Commands parked behind a full queue under the block policy."""
        return len(self._backlog)

    @property
    def pending(self) -> int:
        """Everything admitted but not yet dequeued or dropped."""
        return len(self._queue) + len(self._backlog)

    def stats(self) -> ShedStats:
        return ShedStats(
            submitted=self.submitted,
            shed=self.shed,
            dequeued=self.dequeued,
            dropped=self.dropped,
            pending=self.pending,
            high_water=self.high_water,
        )

    # -- arrivals ----------------------------------------------------------------------

    def offer(self, item: Any, now: int) -> Rejected | None:
        """One arrival at tick ``now``; ``None`` = admitted, else the
        :class:`Rejected` record (the caller resolves the client future)."""
        self.submitted += 1
        if len(self._queue) < self.bound and not self._backlog:
            self._queue.append((item, now))
            self.high_water = max(self.high_water, len(self._queue))
            return None
        if self.policy == "block":
            self._backlog.append((item, now))
            return None
        self.shed += 1
        return Rejected("shed", self.shard, len(self._queue))

    # -- service -----------------------------------------------------------------------

    def drain(self, now: int, rate: int) -> Iterator[tuple[Any, int, Rejected | None]]:
        """Dequeue up to ``rate`` commands at tick ``now``.

        Yields ``(item, enqueue_tick, rejection)`` triples in FIFO order:
        ``rejection`` is ``None`` for a command handed to the service and a
        ``"deadline"`` :class:`Rejected` for one dropped stale.  Dropped
        commands do *not* consume service slots — the queue keeps popping
        until ``rate`` commands were actually served (or it emptied),
        which is what a real head-drop server does.
        """
        served = 0
        while served < rate and self._queue:
            item, enqueued = self._queue.popleft()
            self._refill()
            if (
                self.policy == "deadline"
                and self.deadline is not None
                and now - enqueued > self.deadline
            ):
                self.dropped += 1
                yield item, enqueued, Rejected("deadline", self.shard, len(self._queue))
                continue
            self.dequeued += 1
            served += 1
            yield item, enqueued, None

    def _refill(self) -> None:
        """Move backlog into the queue as space frees (block policy)."""
        while self._backlog and len(self._queue) < self.bound:
            self._queue.append(self._backlog.popleft())
            self.high_water = max(self.high_water, len(self._queue))
