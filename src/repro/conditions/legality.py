"""Mechanical verification of the legality criteria (paper §3.2).

A condition-sequence pair ``(S¹, S²)`` with parameters ``(P1, P2, F)`` is
*legal* when the five properties hold:

* **LT1** — every view ``J ∈ V^n_k`` that could have come from some
  ``I ∈ C¹_k`` with ``dist(J, I) ≤ k`` satisfies ``P1(J)`` (one-step
  termination);
* **LT2** — the same with ``C²_k`` and ``P2`` (two-step termination);
* **LA3** — if ``P1(J)`` holds and ``J ≤ I``, ``J' ≤ I'`` for some complete
  vectors with ``dist(I, I') ≤ t``, then ``F(J) = F(J')`` (agreement between
  a one-step decider and anyone);
* **LA4** — if ``P2(J)`` holds and ``J``, ``J'`` extend to a *common*
  complete vector, then ``F(J) = F(J')`` (agreement between a two-step
  decider and anyone, under identical broadcast);
* **LU5** — ``F(J)`` is either a value occurring more than ``t`` times in
  ``J`` or a most common non-``⊥`` value of ``J`` (unanimity).

These are semantic properties over exponentially large spaces.  Theorems 1
and 2 of the paper prove them analytically for the two shipped pairs; this
module re-verifies them **exhaustively** on bounded spaces (small ``n`` and
alphabet) and **statistically** (seeded Monte-Carlo) on larger ones, raising
:class:`repro.errors.LegalityError` with a concrete counterexample on
failure.

The existential quantifiers are discharged without enumerating completions:

* ``∃I, I' : J ≤ I ∧ J' ≤ I' ∧ dist(I, I') ≤ t`` holds iff the number of
  positions where ``J`` and ``J'`` hold two *different non-``⊥``* values is
  at most ``t`` (positions with a ``⊥`` can always be filled to match);
* ``∃I : J ≤ I ∧ J' ≤ I`` holds iff ``J`` and ``J'`` are compatible
  (:func:`repro.conditions.views.merge_compatible`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..errors import LegalityError
from ..types import BOTTOM, Value
from .base import ConditionSequencePair
from .generators import VectorSampler, all_vectors, all_views, perturbations
from .views import View, merge_compatible


def conflicting_positions(a: View, b: View) -> int:
    """Positions where ``a`` and ``b`` hold two different non-``⊥`` values."""
    return sum(
        1
        for x, y in zip(a, b)
        if x is not BOTTOM and y is not BOTTOM and x != y
    )


def completable_within(a: View, b: View, t: int) -> bool:
    """True iff ``∃I, I'`` completing ``a`` and ``b`` with ``dist(I, I') ≤ t``."""
    return conflicting_positions(a, b) <= t


@dataclass
class LegalityReport:
    """Outcome of a legality check.

    Attributes:
        pair: repr of the checked pair.
        checks: number of individual property instances evaluated.
        violations: human-readable descriptions of failures (empty ⇔ legal).
    """

    pair: str
    checks: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def is_legal(self) -> bool:
        return not self.violations

    def require_legal(self) -> None:
        """Raise :class:`LegalityError` when any violation was recorded."""
        if self.violations:
            raise LegalityError("LT1/LT2/LA3/LA4/LU5", self.violations[0])


class LegalityChecker:
    """Checks the five legality criteria for one pair over one alphabet.

    Args:
        pair: the condition-sequence pair under test; its ``n`` and ``t``
            define the spaces quantified over.
        values: the proposal alphabet ``V``.  Exhaustive checking costs
            roughly ``|V|^n · (perturbations)``; keep ``n ≤ 8`` and
            ``|V| ≤ 3``.
    """

    def __init__(self, pair: ConditionSequencePair, values: Sequence[Value]) -> None:
        self.pair = pair
        self.values = list(values)
        self.n = pair.n
        self.t = pair.t

    # -- exhaustive verification ----------------------------------------------

    def check_exhaustive(self, max_pair_views: int | None = None) -> LegalityReport:
        """Verify every criterion over the full bounded space.

        Args:
            max_pair_views: optional cap on the number of views enumerated
                for the quadratic LA3/LA4 checks; ``None`` means no cap.
        """
        report = LegalityReport(pair=repr(self.pair))
        self._check_monotonicity(report)
        self._check_lt(report, which=1)
        self._check_lt(report, which=2)
        views = list(all_views(self.values, self.n, self.t))
        if max_pair_views is not None and len(views) > max_pair_views:
            views = views[:max_pair_views]
        self._check_la(report, views)
        self._check_lu5(report, views)
        return report

    def _check_monotonicity(self, report: LegalityReport) -> None:
        """``C_k ⊇ C_{k+1}`` for both sequences (§2.3 adaptiveness shape)."""
        for label, seq in (
            ("S1", self.pair.one_step_sequence()),
            ("S2", self.pair.two_step_sequence()),
        ):
            for vector in all_vectors(self.values, self.n):
                report.checks += 1
                member = [seq[k].contains(vector) for k in range(len(seq))]
                for k in range(len(member) - 1):
                    if member[k + 1] and not member[k]:
                        report.violations.append(
                            f"{label}: C_{k} does not contain C_{k + 1} "
                            f"witness {vector!r}"
                        )
                        return

    def _check_lt(self, report: LegalityReport, which: int) -> None:
        """LT1 (``which=1``) or LT2 (``which=2``)."""
        seq = (
            self.pair.one_step_sequence()
            if which == 1
            else self.pair.two_step_sequence()
        )
        predicate = self.pair.p1 if which == 1 else self.pair.p2
        for k in range(len(seq)):
            condition = seq[k]
            for vector in all_vectors(self.values, self.n):
                if not condition.contains(vector):
                    continue
                for view in perturbations(vector, self.values, k):
                    if view.count(BOTTOM) > k:
                        continue  # LT quantifies over V^n_k
                    report.checks += 1
                    if not predicate(view):
                        report.violations.append(
                            f"LT{which}: I={vector!r} ∈ C^{which}_{k}, "
                            f"J={view!r}, dist ≤ {k}, but P{which}(J) is false"
                        )
                        return

    def _check_la(self, report: LegalityReport, views: list[View]) -> None:
        """LA3 and LA4 over pairs of views in ``V^n_t``."""
        p1_views = [j for j in views if j.known and self.pair.p1(j)]
        p2_views = [j for j in views if j.known and self.pair.p2(j)]
        for j in p1_views:
            fj = self.pair.f(j)
            for j2 in views:
                if not j2.known:
                    continue
                if not completable_within(j, j2, self.t):
                    continue
                report.checks += 1
                if self.pair.f(j2) != fj:
                    report.violations.append(
                        f"LA3: P1({j!r}) holds, J'={j2!r} completable within "
                        f"t={self.t}, but F(J)={fj!r} ≠ F(J')={self.pair.f(j2)!r}"
                    )
                    return
        for j in p2_views:
            fj = self.pair.f(j)
            for j2 in views:
                if not j2.known:
                    continue
                if merge_compatible(j, j2) is None:
                    continue
                report.checks += 1
                if self.pair.f(j2) != fj:
                    report.violations.append(
                        f"LA4: P2({j!r}) holds, J'={j2!r} shares a completion, "
                        f"but F(J)={fj!r} ≠ F(J')={self.pair.f(j2)!r}"
                    )
                    return

    def _check_lu5(self, report: LegalityReport, views: list[View]) -> None:
        """LU5 — ``F(J)`` occurs ``> t`` times or is a most common value."""
        for j in views:
            if not j.known:
                continue
            report.checks += 1
            value = self.pair.f(j)
            top = j.first()
            top_count = j.count(top) if top is not None else 0
            if j.count(value) > self.t:
                continue
            if j.count(value) == top_count:
                continue
            report.violations.append(
                f"LU5: F({j!r}) = {value!r} occurs {j.count(value)} ≤ t={self.t} "
                f"times and is not a most common value"
            )
            return

    # -- Monte-Carlo verification ----------------------------------------------

    def check_sampled(self, samples: int, seed: int = 0) -> LegalityReport:
        """Statistically probe every criterion on ``samples`` random instances.

        Useful for parameters where exhaustive enumeration is infeasible
        (e.g. ``n = 13``).  A passing report is evidence, not proof.
        """
        report = LegalityReport(pair=repr(self.pair))
        sampler = VectorSampler(self.values, self.n, seed=seed)
        one_seq = self.pair.one_step_sequence()
        two_seq = self.pair.two_step_sequence()
        for _ in range(samples):
            vector = sampler.uniform_vector()
            # LT1 / LT2 on a random corruption level.
            for seq, predicate, name in (
                (one_seq, self.pair.p1, "LT1"),
                (two_seq, self.pair.p2, "LT2"),
            ):
                level = seq.level_of(vector)
                if level is None:
                    continue
                view = sampler.corrupted_view(vector, level)
                if view.count(BOTTOM) > level:
                    continue
                report.checks += 1
                if not predicate(view):
                    report.violations.append(
                        f"{name}: sampled I={vector!r} (level {level}), "
                        f"J={view!r} violates the predicate"
                    )
                    return report
            # LA3 / LA4 / LU5 on two random views of related vectors.
            j = sampler.random_view(vector, self.t)
            other_vector = sampler.corrupted_view(vector, self.t)
            if other_vector.count(BOTTOM):
                continue
            j2 = sampler.random_view(other_vector, self.t)
            if not j.known or not j2.known:
                continue
            report.checks += 1
            if self.pair.p1(j) and completable_within(j, j2, self.t):
                if self.pair.f(j) != self.pair.f(j2):
                    report.violations.append(
                        f"LA3 (sampled): J={j!r}, J'={j2!r}"
                    )
                    return report
            if self.pair.p2(j) and merge_compatible(j, j2) is not None:
                if self.pair.f(j) != self.pair.f(j2):
                    report.violations.append(
                        f"LA4 (sampled): J={j!r}, J'={j2!r}"
                    )
                    return report
            value = self.pair.f(j)
            top = j.first()
            if j.count(value) <= self.t and (
                top is None or j.count(value) != j.count(top)
            ):
                report.violations.append(f"LU5 (sampled): J={j!r}")
                return report
        return report
