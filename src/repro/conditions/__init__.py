"""Condition-based machinery: views, condition sequences, legality.

This package implements §2.3, §2.4 and §3 of the paper: the view algebra
(:mod:`~repro.conditions.views`), adaptive condition sequences and the
doubly-expedited pair abstraction (:mod:`~repro.conditions.base`), the two
concrete legal pairs (:mod:`~repro.conditions.frequency`,
:mod:`~repro.conditions.privileged`), space enumeration/sampling
(:mod:`~repro.conditions.generators`) and the mechanical legality checker
(:mod:`~repro.conditions.legality`).
"""

from .base import (
    Condition,
    ConditionSequence,
    ConditionSequencePair,
    PredicateCondition,
)
from .dlegal import DLegalityResult, condition_members, is_d_legal
from .frequency import FrequencyCondition, FrequencyPair
from .generators import (
    VectorSampler,
    all_vectors,
    all_views,
    multiset_vectors,
    perturbations,
)
from .incremental import ViewStats
from .legality import LegalityChecker, LegalityReport, completable_within
from .privileged import PrivilegedCondition, PrivilegedPair
from .views import View, hamming_distance, merge_compatible, views_of

__all__ = [
    "Condition",
    "ConditionSequence",
    "ConditionSequencePair",
    "PredicateCondition",
    "FrequencyCondition",
    "FrequencyPair",
    "PrivilegedCondition",
    "PrivilegedPair",
    "VectorSampler",
    "ViewStats",
    "all_vectors",
    "all_views",
    "multiset_vectors",
    "perturbations",
    "LegalityChecker",
    "LegalityReport",
    "completable_within",
    "DLegalityResult",
    "is_d_legal",
    "condition_members",
    "View",
    "hamming_distance",
    "merge_compatible",
    "views_of",
]
