"""The privileged-value-based condition-sequence pair ``P_prv`` (paper §3.4).

In agreement problems such as atomic commitment one value (e.g. ``Commit``)
is proposed by most processes most of the time.  Granting it a privilege
expedites decision.  The building block is::

    C_prv(m, d) = { I ∈ V^n : #_m(I) > d }

which is again a ``d``-legal condition.  The pair instantiates::

    C¹_k = C_prv(m, 3t + k)          (one-step, requires n > 5t)
    C²_k = C_prv(m, 2t + k)          (two-step)

with run-time parameters::

    P1_prv(J) ≡ #_m(J) > 3t
    P2_prv(J) ≡ #_m(J) > 2t
    F_prv(J)  = m                       if #_m(J) > t
              = most frequent non-⊥ value of J   otherwise

Theorem 2 of the paper proves this pair legal.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..types import Value
from .base import Condition, ConditionSequence, ConditionSequencePair
from .views import View


class PrivilegedCondition(Condition):
    """``C_prv(m, d)``: the privileged value ``m`` occurs more than ``d`` times."""

    def __init__(self, privileged: Value, d: int) -> None:
        if d < 0:
            raise ConfigurationError(f"privileged margin d must be >= 0, got {d}")
        self.privileged = privileged
        self.d = d

    def contains(self, vector: View) -> bool:
        return vector.count(self.privileged) > self.d

    def __repr__(self) -> str:
        return f"C_prv({self.privileged!r}, {self.d})"


class PrivilegedPair(ConditionSequencePair):
    """``P_prv`` — the privileged-value pair of §3.4 (requires ``n > 5t``).

    Every process must know the privileged value ``m`` a priori; it is a
    constructor argument here.
    """

    required_ratio = 5
    histogram_invariant = True  # #_m(I) is a pure function of the histogram

    def __init__(
        self, n: int, t: int, privileged: Value, *, enforce_resilience: bool = True
    ) -> None:
        super().__init__(n, t, enforce_resilience=enforce_resilience)
        self.privileged = privileged

    def p1(self, view: View) -> bool:
        """``P1_prv(J) ≡ #_m(J) > 3t``."""
        return view.count(self.privileged) > 3 * self.t

    def p2(self, view: View) -> bool:
        """``P2_prv(J) ≡ #_m(J) > 2t``."""
        return view.count(self.privileged) > 2 * self.t

    def f(self, view: View) -> Value:
        """``F_prv(J)``: ``m`` when ``#_m(J) > t``, else the most frequent value."""
        if view.count(self.privileged) > self.t:
            return self.privileged
        top = view.first()
        if top is None:
            raise ValueError("F is undefined on the all-⊥ view")
        return top

    def p1_incremental(self, stats) -> bool:
        """O(1) ``P1`` over running stats: one hash lookup."""
        return stats.count(self.privileged) > 3 * self.t

    def p2_incremental(self, stats) -> bool:
        """O(1) ``P2`` over running stats."""
        return stats.count(self.privileged) > 2 * self.t

    def f_incremental(self, stats) -> Value:
        """O(1) ``F``: privilege check plus the maintained ``1st(J)``."""
        if stats.count(self.privileged) > self.t:
            return self.privileged
        top = stats.first()
        if top is None:
            raise ValueError("F is undefined on the all-⊥ view")
        return top

    def one_step_sequence(self) -> ConditionSequence:
        """``C¹_k = C_prv(m, 3t + k)`` for ``k = 0 .. t``."""
        return ConditionSequence(
            [PrivilegedCondition(self.privileged, 3 * self.t + k) for k in range(self.t + 1)]
        )

    def two_step_sequence(self) -> ConditionSequence:
        """``C²_k = C_prv(m, 2t + k)`` for ``k = 0 .. t``."""
        return ConditionSequence(
            [PrivilegedCondition(self.privileged, 2 * self.t + k) for k in range(self.t + 1)]
        )

    def __repr__(self) -> str:
        return (
            f"PrivilegedPair(n={self.n}, t={self.t}, "
            f"privileged={self.privileged!r})"
        )
