"""Incremental view statistics — the O(1) hot-path engine.

DEX's defining trick is that views keep updating *after* the ``n − t``
threshold, so ``P1``/``P2`` are re-evaluated on **every** later arrival
(§4).  Rebuilding a :class:`~repro.conditions.views.View` (and its
``Counter``) per arrival makes each re-evaluation Θ(n); across the Θ(n³)
system-wide deliveries of one instance that Θ(n)-per-event constant is the
dominant protocol-layer cost.  :class:`ViewStats` removes it: a mutable
companion to ``View`` that maintains, under single-entry first-write
updates,

* ``|J|`` (:attr:`ViewStats.known`),
* the per-value counts,
* ``1st(J)`` with the paper's largest-value tie-break, and
* the exact runner-up count ``#_2nd(J)(J)``

each in O(1) per update — so every quantity the shipped predicates need
(``|J| ≥ n − t``, the frequency gap, ``#_m(J)``, ``1st(J)``) is O(1) too.

Why the top-two maintenance is exact: entries are binding (first write
wins), so a value's count only ever grows by 1.  When ``count[v]`` becomes
``c``:

* ``v`` was the leader — its count just grows;
* ``c`` exceeds the leader's count — only possible from ``c − 1`` equal to
  it, so ``v`` overtakes and the dethroned leader (still holding the old
  maximum) is exactly the new runner-up count;
* ``c`` ties the leader — the runner-up count becomes ``c`` whichever of
  the two wins the tie-break;
* otherwise the runner-up count is simply ``max(second, c)``.

``2nd(J)``'s *identity* is not needed by any predicate (the gap only needs
its count), so :meth:`second` recomputes it on demand in O(|values|); it is
observability, not hot path.

Tie-breaks mirror :func:`repro.types.largest` pairwise.  For homogeneous
(or int/str-mixed) value sets pairwise and batch comparison agree; exotic
partially-ordered value types may diverge from ``View.first`` on exact
count ties, which is why the equivalence suite fuzzes mixed int/str
alphabets.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from ..types import BOTTOM, Value, order_key
from .views import View

def _get_no_value() -> object:
    """Support pickling of the :data:`_NO_VALUE` singleton (protocol
    snapshots pickle ``ViewStats``; a bare ``object()`` would come back as
    a *different* instance and silently break the ``is _NO_VALUE``
    checks)."""
    return _NO_VALUE


#: Internal "no leader yet" marker — distinct from ``None``, which is a
#: perfectly proposable value.
_NO_VALUE = type("NoValue", (), {
    "__repr__": lambda self: "<no-value>",
    "__reduce__": lambda self: (_get_no_value, ()),
})()


def _prefer(a: Value, b: Value) -> bool:
    """True when ``a`` beats ``b`` under :func:`repro.types.largest`."""
    try:
        return a > b
    except TypeError:
        return order_key(a) > order_key(b)


class ViewStats:
    """Running statistics of one growing view, O(1) per entry update.

    The update protocol matches how every algorithm in this library fills
    its views: each slot is written at most once (the binding first value
    per sender), never cleared.  :meth:`set_entry` enforces that and
    returns whether the write was binding.

    Args:
        n: number of slots (the system's ``n``).
    """

    __slots__ = (
        "n",
        "_entries",
        "_counts",
        "known",
        "_top_value",
        "_top_count",
        "_second_count",
    )

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self._entries: list[Value] = [BOTTOM] * n
        self._counts: dict[Value, int] = {}
        #: ``|J|`` — number of bound (non-``⊥``) entries.
        self.known = 0
        self._top_value: Value = _NO_VALUE
        self._top_count = 0
        self._second_count = 0

    @classmethod
    def from_entries(cls, entries: Iterable[Value]) -> "ViewStats":
        """Build stats by replaying ``entries`` (``⊥`` slots stay unbound)."""
        entries = list(entries)
        stats = cls(len(entries))
        for index, value in enumerate(entries):
            if value is not BOTTOM:
                stats.set_entry(index, value)
        return stats

    # -- the single-entry update --------------------------------------------------

    def set_entry(self, index: int, value: Value) -> bool:
        """Bind slot ``index`` to ``value``; no-op when already bound.

        Returns:
            True when this write was the binding one.
        """
        if value is BOTTOM:
            raise ValueError("cannot bind an entry to ⊥")
        if self._entries[index] is not BOTTOM:
            return False
        self._entries[index] = value
        self.known += 1
        count = self._counts.get(value, 0) + 1
        self._counts[value] = count
        top_count = self._top_count
        if self._top_value is _NO_VALUE:
            self._top_value = value
            self._top_count = 1
        elif value == self._top_value:
            self._top_count = count
        elif count > top_count:
            # overtake: the dethroned leader still holds the old maximum,
            # which is therefore the exact new runner-up count
            self._second_count = top_count
            self._top_value = value
            self._top_count = count
        elif count == top_count:
            if _prefer(value, self._top_value):
                self._top_value = value
            self._second_count = count
        elif count > self._second_count:
            self._second_count = count
        return True

    # -- O(1) observations ---------------------------------------------------------

    def count(self, value: Value) -> int:
        """``#_v(J)`` (``⊥`` queries count the unbound slots)."""
        if value is BOTTOM:
            return self.n - self.known
        return self._counts.get(value, 0)

    def first(self) -> Optional[Value]:
        """``1st(J)`` — most frequent value, largest-value tie-break."""
        if self._top_value is _NO_VALUE:
            return None
        return self._top_value

    @property
    def first_count(self) -> int:
        """``#_1st(J)(J)`` (0 for the all-``⊥`` view)."""
        return self._top_count

    @property
    def second_count(self) -> int:
        """``#_2nd(J)(J)`` (0 when fewer than two distinct values)."""
        return self._second_count

    def frequency_gap(self) -> int:
        """``#_1st(J)(J) − #_2nd(J)(J)`` — the frequency pair's predicate fuel."""
        return self._top_count - self._second_count

    @property
    def is_complete(self) -> bool:
        return self.known == self.n

    def __len__(self) -> int:
        return self.n

    # -- observability (not hot path) ---------------------------------------------

    def second(self) -> Optional[Value]:
        """``2nd(J)`` — recomputed on demand in O(|values|)."""
        if self._second_count == 0:
            return None
        top = self._top_value
        best: Value = _NO_VALUE
        for value, count in self._counts.items():
            if count == self._second_count and value != top:
                if best is _NO_VALUE or _prefer(value, best):
                    best = value
        return None if best is _NO_VALUE else best

    @property
    def entries(self) -> tuple[Value, ...]:
        """The raw entries, ``⊥`` included."""
        return tuple(self._entries)

    def as_view(self) -> View:
        """Snapshot as an immutable :class:`View` (for custom predicates)."""
        return View(self._entries)

    def __repr__(self) -> str:
        body = ", ".join(
            repr(e) if e is not BOTTOM else "⊥" for e in self._entries
        )
        return f"ViewStats({body})"
