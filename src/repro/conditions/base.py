"""Abstractions for the condition-based approach (paper §2.3, §2.4, §3.2).

A *condition* is a set of input vectors.  *Adaptiveness* is captured by a
condition **sequence** ``(C_0, …, C_t)`` with ``C_k ⊇ C_{k+1}``: ``C_k`` is
the set of inputs for which fast decision is guaranteed when the actual
number of faults is ``k``.  A *doubly-expedited* algorithm is parameterised
by a **pair** of sequences ``(S¹, S²)`` — one for one-step and one for
two-step decisions — together with the run-time parameters ``P1``, ``P2``
and ``F`` used by Figure 1.

Concrete pairs (frequency-based, privileged-value-based) live in sibling
modules; the legality checker that validates criteria LT1–LU5 lives in
:mod:`repro.conditions.legality`.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

from ..errors import ConfigurationError
from ..types import Value
from .views import View


class Condition(abc.ABC):
    """A predicate over complete input vectors (a subset of ``V^n``)."""

    @abc.abstractmethod
    def contains(self, vector: View) -> bool:
        """True when ``vector`` belongs to the condition."""

    def __contains__(self, vector: View) -> bool:
        return self.contains(vector)


class PredicateCondition(Condition):
    """A condition defined by an arbitrary Python predicate (for tests)."""

    def __init__(self, predicate, description: str = "") -> None:
        self._predicate = predicate
        self.description = description

    def contains(self, vector: View) -> bool:
        return bool(self._predicate(vector))

    def __repr__(self) -> str:
        return f"PredicateCondition({self.description or self._predicate!r})"


class ConditionSequence:
    """An adaptive condition sequence ``(C_0, C_1, …, C_t)`` (paper §2.3).

    The sequence must be monotonically shrinking: ``C_k ⊇ C_{k+1}``.  This
    class does not verify that inclusion (it is a semantic property over all
    of ``V^n``); :mod:`repro.conditions.legality` checks it exhaustively on
    small spaces.
    """

    def __init__(self, conditions: Sequence[Condition]) -> None:
        if not conditions:
            raise ConfigurationError("a condition sequence needs at least C_0")
        self._conditions = tuple(conditions)

    def __len__(self) -> int:
        return len(self._conditions)

    def __getitem__(self, k: int) -> Condition:
        return self._conditions[k]

    def level_of(self, vector: View) -> int | None:
        """The largest ``k`` with ``vector ∈ C_k``, or ``None`` if not even
        ``C_0`` holds.

        By monotonicity, ``vector ∈ C_j`` for every ``j ≤ k``: the fast path
        is guaranteed whenever the actual fault count is at most ``k``.
        """
        best: int | None = None
        for k, condition in enumerate(self._conditions):
            if condition.contains(vector):
                best = k
            else:
                break
        return best


class ConditionSequencePair(abc.ABC):
    """A legal pair ``(S¹, S²)`` with its parameters ``P1``, ``P2``, ``F``.

    This is the object the generic DEX algorithm is instantiated with.  The
    five legality criteria (LT1, LT2, LA3, LA4, LU5) are semantic obligations
    over the whole input space; subclasses prove them on paper (Theorems 1
    and 2) and :mod:`repro.conditions.legality` re-verifies them mechanically
    on bounded spaces.

    Attributes:
        n: number of processes.
        t: failure upper bound.
    """

    #: The resilience bound the pair needs to be meaningful, as a multiplier:
    #: the pair requires ``n > required_ratio * t``.
    required_ratio: int = 5

    #: True when membership in every condition of both sequences depends only
    #: on the value histogram of the vector, never on entry positions.  Such
    #: pairs admit the multiset-weighted exact coverage enumerator
    #: (:func:`repro.analysis.coverage.exact_space_coverage`), collapsing
    #: ``|V|^n`` vectors to ``C(n+|V|−1, |V|−1)`` weighted multisets.
    histogram_invariant: bool = False

    def __init__(self, n: int, t: int, *, enforce_resilience: bool = True) -> None:
        if enforce_resilience and n <= self.required_ratio * t:
            raise ConfigurationError(
                f"{type(self).__name__} requires n > {self.required_ratio}t; "
                f"got n={n}, t={t}"
            )
        self.n = n
        self.t = t
        self._one_step_sequence_cache: ConditionSequence | None = None
        self._two_step_sequence_cache: ConditionSequence | None = None

    def __init_subclass__(cls, **kwargs) -> None:
        """Keep the fast paths honest under subclassing.

        A subclass that overrides a *batch* predicate (``p1``/``p2``/``f``)
        without also overriding the matching ``*_incremental`` hook must
        not inherit a parent's O(1) fast path — it would silently bypass
        the override (e.g. an ablation pair with ``p2 ≡ False`` deciding
        two-step anyway).  Such hooks are reset to the batch-adapter
        default.  Likewise ``histogram_invariant`` is a per-class *claim*:
        it is dropped to False unless the subclass redeclares it.
        """
        super().__init_subclass__(**kwargs)
        overridden = [name for name in ("p1", "p2", "f") if name in cls.__dict__]
        for name in overridden:
            fast = f"{name}_incremental"
            if fast not in cls.__dict__:
                setattr(cls, fast, getattr(ConditionSequencePair, fast))
        redefines_space = overridden or any(
            name in cls.__dict__
            for name in ("one_step_sequence", "two_step_sequence")
        )
        if redefines_space and "histogram_invariant" not in cls.__dict__:
            cls.histogram_invariant = False

    # -- run-time parameters (Figure 1) ---------------------------------------

    @abc.abstractmethod
    def p1(self, view: View) -> bool:
        """``P1(J)`` — may the process decide in one step from view ``J``?"""

    @abc.abstractmethod
    def p2(self, view: View) -> bool:
        """``P2(J)`` — may the process decide in two steps from view ``J``?"""

    @abc.abstractmethod
    def f(self, view: View) -> Value:
        """``F(J)`` — the decision value extracted from view ``J``."""

    # -- incremental fast path (hot-path engine) -------------------------------

    # The protocols feed a mutable :class:`~repro.conditions.incremental.
    # ViewStats` through these hooks so predicate re-evaluation is O(1) per
    # arrival.  The defaults snapshot the stats into a ``View`` and defer to
    # the batch predicates, keeping every custom pair correct without code
    # changes; the shipped pairs override them with O(1) bodies.

    def p1_incremental(self, stats) -> bool:
        """``P1`` over running :class:`ViewStats` (default: View fallback)."""
        return self.p1(stats.as_view())

    def p2_incremental(self, stats) -> bool:
        """``P2`` over running :class:`ViewStats` (default: View fallback)."""
        return self.p2(stats.as_view())

    def f_incremental(self, stats) -> Value:
        """``F`` over running :class:`ViewStats` (default: View fallback)."""
        return self.f(stats.as_view())

    # -- the sequences themselves ---------------------------------------------

    @abc.abstractmethod
    def one_step_sequence(self) -> ConditionSequence:
        """``S¹ = (C¹_0, …, C¹_t)`` — conditions for one-step decision."""

    @abc.abstractmethod
    def two_step_sequence(self) -> ConditionSequence:
        """``S² = (C²_0, …, C²_t)`` — conditions for two-step decision."""

    # -- convenience -----------------------------------------------------------

    def one_step_level(self, vector: View) -> int | None:
        """Largest ``k`` such that one-step decision is guaranteed for ``f ≤ k``.

        The sequence object is built once and cached — the conditions are
        pure functions of the constructor arguments, and coverage sweeps
        call this per vector.
        """
        if self._one_step_sequence_cache is None:
            self._one_step_sequence_cache = self.one_step_sequence()
        return self._one_step_sequence_cache.level_of(vector)

    def two_step_level(self, vector: View) -> int | None:
        """Largest ``k`` such that two-step decision is guaranteed for ``f ≤ k``."""
        if self._two_step_sequence_cache is None:
            self._two_step_sequence_cache = self.two_step_sequence()
        return self._two_step_sequence_cache.level_of(vector)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, t={self.t})"
