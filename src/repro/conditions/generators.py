"""Enumeration and sampling of input vectors and views.

The legality checker and the coverage analysis need to iterate over the
spaces the paper quantifies over:

* ``V^n``      — all complete input vectors (:func:`all_vectors`);
* ``V^n_k``    — all views with at most ``k`` default entries
  (:func:`all_views`);
* perturbations ``{J : dist(J, I) ≤ k}`` of a vector ``I``
  (:func:`perturbations`).

Exhaustive enumeration is exponential; the module also offers seeded random
samplers used for Monte-Carlo estimates on larger spaces.
"""

from __future__ import annotations

import itertools
import math
import random
from collections.abc import Iterator, Sequence

from ..types import BOTTOM, Value
from .views import View


def all_vectors(values: Sequence[Value], n: int) -> Iterator[View]:
    """Enumerate the complete input-vector space ``V^n``."""
    for entries in itertools.product(values, repeat=n):
        yield View(entries)


def multiset_vectors(
    values: Sequence[Value], n: int
) -> Iterator[tuple[View, int]]:
    """Enumerate ``V^n`` collapsed to value histograms, with multiplicities.

    Yields one representative vector per multiset of ``n`` values over
    ``values`` (entries in alphabet order), paired with the number of
    distinct vectors sharing that histogram — the multinomial coefficient
    ``n! / (k_1! · … · k_|V|!)``.  The weights sum to exactly ``|V|^n``.

    Any histogram-invariant property (the frequency gap, any per-value
    count — i.e. every condition of the shipped pairs) takes the same
    truth value on all vectors of a multiset, so exhaustive coverage over
    ``|V|^n`` vectors collapses to ``C(n+|V|−1, |V|−1)`` weighted checks:
    an exponential→polynomial reduction (n=31, |V|=2: 2³¹ vectors, 32
    multisets).
    """
    for combo in itertools.combinations_with_replacement(range(len(values)), n):
        weight = math.factorial(n)
        start = 0
        while start < n:
            stop = start
            while stop < n and combo[stop] == combo[start]:
                stop += 1
            weight //= math.factorial(stop - start)
            start = stop
        yield View(values[i] for i in combo), weight


def all_views(values: Sequence[Value], n: int, max_bottoms: int) -> Iterator[View]:
    """Enumerate ``V^n_k``: views over ``values`` with at most ``max_bottoms`` ``⊥``s."""
    for k in range(max_bottoms + 1):
        for positions in itertools.combinations(range(n), k):
            position_set = set(positions)
            free = [i for i in range(n) if i not in position_set]
            for chosen in itertools.product(values, repeat=len(free)):
                entries: list[Value] = [BOTTOM] * n
                for i, v in zip(free, chosen):
                    entries[i] = v
                yield View(entries)


def perturbations(
    vector: View, values: Sequence[Value], k: int, allow_bottom: bool = True
) -> Iterator[View]:
    """Enumerate every ``J`` with ``dist(J, vector) ≤ k``.

    Changed entries range over ``values`` (and ``⊥`` when ``allow_bottom``),
    modelling up to ``k`` Byzantine processes whose entries of the view may
    hold anything — or nothing yet.
    """
    alphabet: list[Value] = list(values) + ([BOTTOM] if allow_bottom else [])
    n = len(vector)
    for j in range(k + 1):
        for positions in itertools.combinations(range(n), j):
            for replacement in itertools.product(alphabet, repeat=j):
                entries = list(vector.entries)
                changed = False
                for pos, new in zip(positions, replacement):
                    if not _same(entries[pos], new):
                        changed = True
                    entries[pos] = new
                if j == 0 or changed:
                    yield View(entries)


def _same(a: Value, b: Value) -> bool:
    if a is BOTTOM or b is BOTTOM:
        return a is b
    return a == b


class VectorSampler:
    """Seeded random sampler over input vectors and views.

    Args:
        values: the proposal alphabet ``V`` (must be non-empty).
        n: vector length.
        seed: PRNG seed; two samplers with equal arguments produce equal
            streams, keeping every Monte-Carlo experiment reproducible.
    """

    def __init__(self, values: Sequence[Value], n: int, seed: int = 0) -> None:
        if not values:
            raise ValueError("the value alphabet must be non-empty")
        self.values = list(values)
        self.n = n
        self._rng = random.Random(seed)

    def uniform_vector(self) -> View:
        """A vector with i.i.d. uniform entries."""
        return View(self._rng.choice(self.values) for _ in range(self.n))

    def skewed_vector(self, favourite: Value, p: float) -> View:
        """Each entry is ``favourite`` with probability ``p``, else uniform
        over the remaining values (models low-contention workloads)."""
        others = [v for v in self.values if v != favourite] or [favourite]
        return View(
            favourite if self._rng.random() < p else self._rng.choice(others)
            for _ in range(self.n)
        )

    def random_view(self, vector: View, max_bottoms: int) -> View:
        """A view of ``vector`` with a uniform number (≤ ``max_bottoms``) of
        ``⊥`` entries in uniform positions."""
        k = self._rng.randint(0, max_bottoms)
        positions = self._rng.sample(range(self.n), k)
        entries = list(vector.entries)
        for pos in positions:
            entries[pos] = BOTTOM
        return View(entries)

    def corrupted_view(self, vector: View, k: int) -> View:
        """A view at Hamming distance at most ``k`` from ``vector``, where
        corrupted entries become a random value or ``⊥``."""
        alphabet = self.values + [BOTTOM]
        count = self._rng.randint(0, k)
        positions = self._rng.sample(range(self.n), count)
        entries = list(vector.entries)
        for pos in positions:
            entries[pos] = self._rng.choice(alphabet)
        return View(entries)
