"""The frequency-based legal condition-sequence pair ``P_freq`` (paper §3.3).

The building block is the *frequency-based condition*::

    C_freq(d) = { I ∈ V^n : #_1st(I)(I) − #_2nd(I)(I) > d }

i.e. the most frequent value beats the runner-up by more than ``d``.
``C_freq(d)`` is a ``d``-legal condition [Mostefaoui et al.], necessary and
sufficient for crash consensus with at most ``d`` crashes.

The pair instantiates the sequences as::

    C¹_k = C_freq(4t + 2k)          (one-step,  requires n > 6t)
    C²_k = C_freq(2t + 2k)          (two-step)

with run-time parameters::

    P1_freq(J) ≡ gap(J) > 4t
    P2_freq(J) ≡ gap(J) > 2t
    F_freq(J)  = 1st(J)

Theorem 1 of the paper proves this pair legal; the mechanical re-check lives
in :mod:`repro.conditions.legality`.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..types import Value
from .base import Condition, ConditionSequence, ConditionSequencePair
from .views import View


class FrequencyCondition(Condition):
    """``C_freq(d)``: the top value leads the second by more than ``d``."""

    def __init__(self, d: int) -> None:
        if d < 0:
            raise ConfigurationError(f"frequency margin d must be >= 0, got {d}")
        self.d = d

    def contains(self, vector: View) -> bool:
        return vector.frequency_gap() > self.d

    def __repr__(self) -> str:
        return f"C_freq({self.d})"


class FrequencyPair(ConditionSequencePair):
    """``P_freq`` — the frequency-based pair of §3.3 (requires ``n > 6t``)."""

    required_ratio = 6
    histogram_invariant = True  # the gap is a pure function of the histogram

    def p1(self, view: View) -> bool:
        """``P1_freq(J) ≡ #_1st(J)(J) − #_2nd(J)(J) > 4t``."""
        return view.frequency_gap() > 4 * self.t

    def p2(self, view: View) -> bool:
        """``P2_freq(J) ≡ #_1st(J)(J) − #_2nd(J)(J) > 2t``."""
        return view.frequency_gap() > 2 * self.t

    def f(self, view: View) -> Value:
        """``F_freq(J) = 1st(J)`` (ties pick the largest value)."""
        top = view.first()
        if top is None:
            raise ValueError("F is undefined on the all-⊥ view")
        return top

    def p1_incremental(self, stats) -> bool:
        """O(1) ``P1`` over running stats: the gap is maintained, not scanned."""
        return stats.frequency_gap() > 4 * self.t

    def p2_incremental(self, stats) -> bool:
        """O(1) ``P2`` over running stats."""
        return stats.frequency_gap() > 2 * self.t

    def f_incremental(self, stats) -> Value:
        """O(1) ``F``: ``1st(J)`` is maintained with the largest tie-break."""
        top = stats.first()
        if top is None:
            raise ValueError("F is undefined on the all-⊥ view")
        return top

    def one_step_sequence(self) -> ConditionSequence:
        """``C¹_k = C_freq(4t + 2k)`` for ``k = 0 .. t``."""
        return ConditionSequence(
            [FrequencyCondition(4 * self.t + 2 * k) for k in range(self.t + 1)]
        )

    def two_step_sequence(self) -> ConditionSequence:
        """``C²_k = C_freq(2t + 2k)`` for ``k = 0 .. t``."""
        return ConditionSequence(
            [FrequencyCondition(2 * self.t + 2 * k) for k in range(self.t + 1)]
        )
