"""d-legal conditions — the solvability foundation the paper builds on.

§3.3/§3.4 note that ``C_freq(d)`` and ``C_prv(m, d)`` "belong to d-legal
conditions [10], which are necessary and sufficient to solve the consensus
in failure prone asynchronous systems, where at most d processes can
crash" (Mostéfaoui, Rajsbaum, Raynal).  This module makes that citation
executable: a decision procedure for d-legality of *finite* conditions.

Characterisation used: consider the graph ``G(C, d)`` whose vertices are
the vectors of ``C``, with an edge between two vectors at Hamming distance
at most ``d`` (two such vectors can be confused by a process missing ``d``
entries, so consensus must decide the same value for both).  ``C`` is
d-legal iff a decision function ``F`` exists with

1. ``#_{F(I)}(I) > d`` for every ``I ∈ C`` (the decided value survives
   ``d`` crashes), and
2. ``F`` constant on every connected component of ``G(C, d)``.

Both requirements reduce to: **every connected component has a value that
appears more than ``d`` times in each of its vectors** — checked here with
a union-find over the component structure and a per-component candidate
intersection.  The procedure is exact on explicitly enumerated conditions
(exponential spaces: keep ``n`` and ``|V|`` small) and is used by the test
suite to re-verify the paper's citation for both building-block conditions
as well as to exhibit non-legal conditions.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..types import Value
from .views import View, hamming_distance


class _UnionFind:
    """Path-compressed union-find over ``range(n)``."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


@dataclass
class DLegalityResult:
    """Outcome of a d-legality decision.

    Attributes:
        d: the parameter checked.
        legal: whether a valid decision function exists.
        components: number of connected components of ``G(C, d)``.
        decision: a witness ``F`` (vector → value) when legal.
        failure: a human-readable reason when not legal.
    """

    d: int
    legal: bool
    components: int
    decision: dict[View, Value] = field(default_factory=dict)
    failure: str = ""


def frequent_values(vector: View, d: int) -> set[Value]:
    """Values occurring more than ``d`` times in ``vector``."""
    return {v for v in vector.values() if vector.count(v) > d}


def is_d_legal(vectors: Iterable[View], d: int) -> DLegalityResult:
    """Decide d-legality of the finite condition ``vectors``.

    Args:
        vectors: the condition's vectors (complete input vectors).
        d: the crash-failure parameter.

    Returns:
        A :class:`DLegalityResult`; when legal, ``decision`` holds a
        witness ``F`` (constant per component, value occurring ``> d``
        times in every member).
    """
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    members: list[View] = list(vectors)
    if not members:
        return DLegalityResult(d=d, legal=True, components=0)
    n = len(members)
    uf = _UnionFind(n)
    for i in range(n):
        for j in range(i + 1, n):
            if hamming_distance(members[i], members[j]) <= d:
                uf.union(i, j)

    by_component: dict[int, list[int]] = {}
    for i in range(n):
        by_component.setdefault(uf.find(i), []).append(i)

    decision: dict[View, Value] = {}
    for indices in by_component.values():
        candidates: set[Value] | None = None
        for i in indices:
            frequent = frequent_values(members[i], d)
            candidates = frequent if candidates is None else candidates & frequent
            if not candidates:
                return DLegalityResult(
                    d=d,
                    legal=False,
                    components=len(by_component),
                    failure=(
                        f"component containing {members[indices[0]]!r} has no "
                        f"common value occurring > {d} times (stuck at "
                        f"{members[i]!r})"
                    ),
                )
        # deterministic witness: the largest candidate by the safe order
        from ..types import largest

        value = largest(candidates)
        for i in indices:
            decision[members[i]] = value
    return DLegalityResult(
        d=d, legal=True, components=len(by_component), decision=decision
    )


def condition_members(
    condition, values: Sequence[Value], n: int
) -> list[View]:
    """Enumerate the members of a :class:`~repro.conditions.base.Condition`
    over the finite space ``values^n`` (helper for the checker)."""
    from .generators import all_vectors

    return [v for v in all_vectors(values, n) if condition.contains(v)]
