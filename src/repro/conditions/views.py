"""Views and input vectors (paper §3.1).

An *input vector* ``I`` is an ``n``-tuple of proposal values, one per
process.  A *view* ``J`` of ``I`` is obtained by replacing at most ``t``
entries with the default value ``⊥`` (:data:`repro.types.BOTTOM`): it models
what a process has heard so far in an execution where some messages have not
arrived.  This module implements the paper's notation exactly:

* ``#_v(J)`` — :meth:`View.count`;
* ``|J|``   — :meth:`View.known` (number of non-``⊥`` entries);
* ``dist(J1, J2)`` — :func:`hamming_distance`;
* ``J1 ≤ J2`` (containment) — :meth:`View.contained_in`;
* ``1st(J)`` / ``2nd(J)`` — :meth:`View.first` / :meth:`View.second`,
  including the paper's tie-break "if two or more values appear most often,
  the largest one is selected".
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from typing import Optional

from ..types import BOTTOM, Value, largest


class View:
    """An immutable ``(V ∪ {⊥})^n`` vector with the paper's §3.1 operations.

    ``View`` doubles as the representation of complete input vectors (a view
    with no ``⊥`` entries), so conditions and predicates share one type.
    """

    __slots__ = ("_entries", "_counter")

    def __init__(self, entries: Iterable[Value]) -> None:
        self._entries: tuple[Value, ...] = tuple(entries)
        self._counter: Optional[Counter] = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def bottoms(cls, n: int) -> "View":
        """The all-``⊥`` vector ``⊥^n``."""
        return cls([BOTTOM] * n)

    @classmethod
    def of(cls, *entries: Value) -> "View":
        """Convenience literal constructor: ``View.of(1, 1, BOTTOM, 2)``."""
        return cls(entries)

    def with_entry(self, index: int, value: Value) -> "View":
        """Return a copy with entry ``index`` replaced by ``value``."""
        entries = list(self._entries)
        entries[index] = value
        return View(entries)

    def fill_bottoms_from(self, complete: "View") -> "View":
        """Replace every ``⊥`` entry with the corresponding entry of ``complete``.

        This realises the proof device of §4.0.1: from the view ``J_1i`` the
        correctness argument builds the vector ``I^1_i`` by restoring missing
        entries from the actual input vector ``I``.
        """
        if len(complete) != len(self):
            raise ValueError("vectors must have the same length")
        return View(
            c if e is BOTTOM else e
            for e, c in zip(self._entries, complete._entries)
        )

    # -- basic protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Value]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> Value:
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __repr__(self) -> str:
        body = ", ".join(repr(e) if e is not BOTTOM else "⊥" for e in self._entries)
        return f"View({body})"

    @property
    def entries(self) -> tuple[Value, ...]:
        """The raw entries, ``⊥`` included."""
        return self._entries

    # -- §3.1 operations -------------------------------------------------------

    def _counts(self) -> Counter:
        if self._counter is None:
            self._counter = Counter(
                e for e in self._entries if e is not BOTTOM
            )
        return self._counter

    def count(self, value: Value) -> int:
        """``#_v(J)`` — occurrences of ``value`` (``⊥`` never counts)."""
        if value is BOTTOM:
            return sum(1 for e in self._entries if e is BOTTOM)
        return self._counts()[value]

    @property
    def known(self) -> int:
        """``|J|`` — the number of non-``⊥`` entries."""
        return len(self._entries) - self.count(BOTTOM)

    @property
    def is_complete(self) -> bool:
        """True when no entry is ``⊥`` (i.e. this is a full input vector)."""
        return self.count(BOTTOM) == 0

    def values(self) -> set[Value]:
        """The set of distinct non-``⊥`` values present."""
        return set(self._counts())

    def first(self) -> Optional[Value]:
        """``1st(J)`` — the most frequent non-``⊥`` value; ties pick the largest.

        Returns ``None`` for the all-``⊥`` view, where ``1st`` is undefined.
        """
        counts = self._counts()
        if not counts:
            return None
        best = max(counts.values())
        return largest(v for v, c in counts.items() if c == best)

    def second(self) -> Optional[Value]:
        """``2nd(J)`` — the most frequent value after erasing ``1st(J)``.

        Returns ``None`` when fewer than two distinct values appear.
        """
        counts = self._counts()
        if not counts:
            # Only the all-⊥ view has no 2nd; testing first() is None here
            # would wrongly bail when the *value* None is the most frequent.
            return None
        top = self.first()
        rest = {v: c for v, c in counts.items() if v != top}
        if not rest:
            return None
        best = max(rest.values())
        return largest(v for v, c in rest.items() if c == best)

    def frequency_gap(self) -> int:
        """``#_1st(J)(J) - #_2nd(J)(J)``; when ``2nd`` is undefined the gap is
        the full count of ``1st`` (and 0 for the all-``⊥`` view).

        Computed from the two largest counts directly, not via
        :meth:`second` — whose ``None`` return is ambiguous when ``None``
        itself is a proposed value (it would silently inflate the gap).
        """
        counts = sorted(self._counts().values(), reverse=True)
        if not counts:
            return 0
        if len(counts) == 1:
            return counts[0]
        return counts[0] - counts[1]

    def contained_in(self, other: "View") -> bool:
        """The containment relation ``self ≤ other`` of §3.1."""
        if len(other) != len(self):
            raise ValueError("vectors must have the same length")
        return all(
            a is BOTTOM or a == b
            for a, b in zip(self._entries, other._entries)
        )


def hamming_distance(a: View, b: View) -> int:
    """``dist(J1, J2)`` — the number of entries where the views differ.

    ``⊥`` is an ordinary symbol for this purpose, exactly as in the paper.
    """
    if len(a) != len(b):
        raise ValueError("vectors must have the same length")
    return sum(1 for x, y in zip(a, b) if not _entries_equal(x, y))


def _entries_equal(x: Value, y: Value) -> bool:
    if x is BOTTOM or y is BOTTOM:
        return x is y
    return x == y


def views_of(vector: View, max_bottoms: int) -> Iterator[View]:
    """Enumerate every view of ``vector`` with at most ``max_bottoms`` ``⊥``s.

    This is the set the paper writes as the views ``J`` of ``I`` in
    ``V^n_t``.  The enumeration is exhaustive, so callers should keep
    ``n`` and ``max_bottoms`` small (it has ``sum_k C(n, k)`` elements).
    """
    from itertools import combinations

    n = len(vector)
    for k in range(min(max_bottoms, n) + 1):
        for positions in combinations(range(n), k):
            entries = list(vector.entries)
            for p in positions:
                entries[p] = BOTTOM
            yield View(entries)


def merge_compatible(a: View, b: View) -> Optional[View]:
    """Return the least upper bound of two views, or ``None`` if they clash.

    Two views are *compatible* when no position holds two different non-``⊥``
    values.  The merged view keeps every known entry of both; this is the
    vector ``I'`` constructed in Case 3 of the agreement proof.
    """
    if len(a) != len(b):
        raise ValueError("vectors must have the same length")
    merged: list[Value] = []
    for x, y in zip(a, b):
        if x is BOTTOM:
            merged.append(y)
        elif y is BOTTOM or x == y:
            merged.append(x)
        else:
            return None
    return View(merged)
