"""Exception hierarchy for the DEX reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class. Sub-classes distinguish
configuration problems (caught at construction time) from protocol-level
violations (caught while a protocol runs) and harness misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A system or protocol was configured with invalid parameters.

    Typical causes: resilience bound violated (e.g. ``n <= 6t`` for the
    frequency-based DEX instantiation), non-positive process counts, or a
    failure pattern naming more faulty processes than the bound ``t``.
    """


class ResilienceError(ConfigurationError):
    """The ``(n, t)`` pair violates the resilience bound of an algorithm."""

    def __init__(self, algorithm: str, n: int, t: int, bound: str) -> None:
        self.algorithm = algorithm
        self.n = n
        self.t = t
        self.bound = bound
        super().__init__(
            f"{algorithm} requires {bound}; got n={n}, t={t}"
        )


class ProtocolViolation(ReproError):
    """A protocol invariant was broken at run time.

    This signals a bug in the library (or a deliberately mis-configured
    experiment), never a Byzantine process: Byzantine messages are data, and
    handling them must not raise.
    """


class DuplicateDecision(ProtocolViolation):
    """A protocol attempted to decide twice on the same instance."""


class SimulationError(ReproError):
    """The simulation harness was driven into an invalid state."""


class SimulationDeadlock(SimulationError):
    """The event queue drained before every correct process decided.

    Carries the set of undecided correct processes to aid debugging.
    """

    def __init__(self, undecided: frozenset[int]) -> None:
        self.undecided = undecided
        super().__init__(
            "simulation ran out of events before correct processes decided: "
            f"undecided={sorted(undecided)}"
        )


class LegalityError(ReproError):
    """A condition-sequence pair failed one of the legality criteria."""

    def __init__(self, criterion: str, detail: str) -> None:
        self.criterion = criterion
        self.detail = detail
        super().__init__(f"legality criterion {criterion} violated: {detail}")
