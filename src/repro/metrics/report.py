"""Plain-text table rendering for experiment reports.

The benchmarks print the same rows the paper reports (Table 1) plus the
quantitative extension tables; this module is the single place that turns
lists of dict-rows into aligned ASCII, so every bench's output looks the
same and diffs cleanly across runs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict-rows as an aligned ASCII table.

    Args:
        rows: one mapping per row; missing keys render empty.
        columns: column order; defaults to the keys of the first row.
        title: optional heading line.
    """
    if not rows:
        return (title + "\n") if title else ""
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value == value else "nan"
    return str(value)


def format_histogram(
    histogram: Mapping[int, int], title: str | None = None, width: int = 40
) -> str:
    """Render an integer histogram as ASCII bars."""
    if not histogram:
        return (title + "\n(empty)") if title else "(empty)"
    peak = max(histogram.values())
    lines = [title] if title else []
    for key in sorted(histogram):
        count = histogram[key]
        bar = "#" * max(1, round(width * count / peak)) if count else ""
        lines.append(f"{key:>6} | {bar} {count}")
    return "\n".join(lines)


def format_series(
    xs: Sequence[Any], ys: Sequence[float], x_label: str, y_label: str
) -> str:
    """Render an (x, y) series as a two-column table (figure data)."""
    rows = [{x_label: x, y_label: y} for x, y in zip(xs, ys)]
    return format_table(rows, [x_label, y_label])
