"""Hot-path benchmark suite: quantify the incremental engine.

Importable benchmark logic behind ``python -m repro bench`` and
``benchmarks/run_bench.py``.  Three measurement groups:

* **instance scaling** (the E14 axis) — wall-clock per simulated consensus
  instance as ``n`` grows, the end-to-end number the incremental engine and
  the simulator hot path are accountable for;
* **predicate microbenchmark** — per-arrival cost of re-evaluating the DEX
  one-step predicate via :class:`~repro.conditions.incremental.ViewStats`
  (O(1) amortized) versus rebuilding a batch
  :class:`~repro.conditions.views.View` per arrival (O(n));
* **coverage enumeration** — exact ``V^n`` coverage via the
  multiset-weighted enumerator (``C(n+|V|-1, |V|-1)`` checks) versus brute
  force (``|V|^n`` checks), at a size where both run, plus the multiset
  enumerator alone at ``n = 31`` where brute force is out of reach.

Results are written as one JSON document (``BENCH_hotpath.json``) with the
commit hash, so regressions are diffable across commits.

The socket-engine group (``bench --engine net`` → ``BENCH_net.json``)
measures the E18 axis instead: fast-path decision rate, throughput and
decision latency over real sockets versus the simulator at the same
``(n, t)``, computed entirely from streaming
:class:`~repro.engine.events.EventStats` sinks folded into a
:class:`~repro.metrics.collectors.StreamAggregate` — no run results are
retained.
"""

from __future__ import annotations

import json
import pathlib
import platform
import subprocess
import time
from typing import Any, Sequence

from ..analysis.coverage import exact_space_coverage, pair_coverage
from ..conditions.frequency import FrequencyPair
from ..conditions.generators import all_vectors, multiset_vectors
from ..conditions.incremental import ViewStats
from ..conditions.views import View
from ..harness import Scenario, dex_freq
from ..workloads.inputs import split, unanimous

#: Default instance sizes for the scaling group (the E14 axis; every size
#: keeps t = (n-1)//6 ≥ 1 so the DEX resilience n > 6t holds).
DEFAULT_SIZES = (7, 13, 19, 25, 31)

#: the ``bench --smoke`` sizes: enough to catch a broken hot path in CI
#: without paying for the full scaling curve.
SMOKE_SIZES = (7, 13)


def _best_of(repeats: int, fn) -> float:
    """Minimum wall-clock of ``repeats`` calls — the least-noise estimator
    for a deterministic workload."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _commit_hash() -> str | None:
    """Current git commit, or None outside a repository / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=pathlib.Path(__file__).parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def bench_instance_scaling(
    sizes: Sequence[int] = DEFAULT_SIZES, repeats: int = 3, seeds: Sequence[int] = (1, 2, 3)
) -> list[dict[str, Any]]:
    """Seconds per simulated dex-freq instance (unanimous inputs) per ``n``."""
    rows = []
    for n in sizes:
        inputs = unanimous(1, n)

        def run_all() -> None:
            for seed in seeds:
                Scenario(dex_freq(), inputs, seed=seed).run()

        run_all()  # warm-up: imports, caches
        per_run = _best_of(repeats, run_all) / len(seeds)
        sample = Scenario(dex_freq(), inputs, seed=seeds[0]).run()
        rows.append(
            {
                "n": n,
                "seconds_per_run": per_run,
                "messages_sent": sample.stats.messages_sent,
                "max_correct_step": sample.max_correct_step,
            }
        )
    return rows


def bench_predicate(n: int = 31, t: int = 5, repeats: int = 5) -> dict[str, Any]:
    """Per-arrival predicate cost: incremental ViewStats vs batch View.

    Replays the same arrival order (process ``i`` proposes ``i % 2``) both
    ways; the batch side rebuilds the View and asks for the frequency gap on
    every arrival, which is what the protocol layer did before the
    incremental engine.
    """
    pair = FrequencyPair(n, t)
    arrivals = [(i, i % 2) for i in range(n)]

    def incremental() -> None:
        stats = ViewStats(n)
        for who, value in arrivals:
            stats.set_entry(who, value)
            if stats.known >= n - t:
                pair.p1_incremental(stats)

    def batch() -> None:
        entries: list[Any] = [None] * n
        known = 0
        for who, value in arrivals:
            entries[who] = value
            known += 1
            if known >= n - t:
                view = View(v for v in entries if v is not None)
                view.frequency_gap() > 4 * t

    incremental_s = _best_of(repeats, lambda: [incremental() for _ in range(100)]) / 100
    batch_s = _best_of(repeats, lambda: [batch() for _ in range(100)]) / 100
    return {
        "n": n,
        "t": t,
        "incremental_seconds_per_instance": incremental_s,
        "batch_seconds_per_instance": batch_s,
        "speedup": batch_s / incremental_s if incremental_s else None,
    }


def bench_coverage(repeats: int = 3) -> dict[str, Any]:
    """Exact-coverage enumeration: multiset weights vs brute force."""
    small = FrequencyPair(13, 2)
    values = [1, 2]

    def brute() -> None:
        vectors = list(all_vectors(values, small.n))
        pair_coverage(small, vectors, range(small.t + 1))

    def multiset() -> None:
        exact_space_coverage(small, values, range(small.t + 1))

    brute_s = _best_of(repeats, brute)
    multiset_s = _best_of(repeats, multiset)

    big = FrequencyPair(31, 5)
    big_s = _best_of(repeats, lambda: exact_space_coverage(big, values, range(big.t + 1)))
    return {
        "small": {
            "n": small.n,
            "values": len(values),
            "brute_force_vectors": len(values) ** small.n,
            "multiset_vectors": sum(1 for _ in multiset_vectors(values, small.n)),
            "brute_force_seconds": brute_s,
            "multiset_seconds": multiset_s,
            "speedup": brute_s / multiset_s if multiset_s else None,
        },
        "large": {
            "n": big.n,
            "values": len(values),
            "brute_force_vectors": len(values) ** big.n,
            "multiset_vectors": sum(1 for _ in multiset_vectors(values, big.n)),
            "multiset_seconds": big_s,
        },
    }


def run_hotpath_bench(
    sizes: Sequence[int] = DEFAULT_SIZES, repeats: int = 3
) -> dict[str, Any]:
    """Run all three groups and assemble the report document."""
    return {
        "benchmark": "hotpath",
        "commit": _commit_hash(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "unix_time": time.time(),
        "instance_scaling": bench_instance_scaling(sizes=sizes, repeats=repeats),
        "predicate": bench_predicate(repeats=max(repeats, 3)),
        "coverage": bench_coverage(repeats=repeats),
    }


#: Workload mix of the socket-engine bench (the E18 axis): the one-step
#: condition holds for ``unanimous`` and ``thin-split`` but real timing
#: decides whether each node's first n−t arrivals witness it.
NET_WORKLOADS: tuple[tuple[str, Any], ...] = (
    ("unanimous", lambda n: unanimous(1, n)),
    ("thin-split", lambda n: split(1, 2, n, 1)),
    ("contended", lambda n: split(1, 2, n, n // 2)),
)


def bench_delivery_batching(
    n: int = 7, runs: int = 5, timeout: float = 20.0
) -> dict[str, Any]:
    """Hub frame economy: per-destination delivery batching off vs on.

    Same contended workload, same seeds; the only difference is whether
    the hub coalesces co-scheduled deliveries into
    :class:`~repro.net.wire.MsgDeliverBatch` frames.  Message semantics
    are identical (``messages_delivered`` matches); what changes is how
    many frames — syscalls — the hub pays for them.
    """
    inputs = split(1, 2, n, n // 2)
    modes: dict[str, dict[str, Any]] = {}
    for mode, batched in (("unbatched", False), ("batched", True)):
        frames = 0
        delivered = 0
        wall = 0.0
        for seed in range(1, runs + 1):
            scenario = Scenario(dex_freq(), inputs, seed=seed)
            result = scenario.run_net(timeout=timeout, batch_deliveries=batched)
            frames += result.hub_frames
            delivered += result.stats.messages_delivered
            wall += result.wall_seconds
        modes[mode] = {
            "runs": runs,
            "hub_frames": frames,
            "messages_delivered": delivered,
            "wall_seconds": round(wall, 4),
            "hub_frames_per_s": round(frames / wall, 1) if wall else 0.0,
            "hub_msgs_per_s": round(delivered / wall, 1) if wall else 0.0,
        }
    batched_frames = modes["batched"]["hub_frames"]
    modes["frame_reduction"] = (
        round(modes["unbatched"]["hub_frames"] / batched_frames, 2)
        if batched_frames
        else None
    )
    return modes


def bench_codec_ablation(
    n: int = 7, runs: int = 5, timeout: float = 20.0
) -> dict[str, Any]:
    """Payload-codec economy: struct-packed binary vs pickle, same runs.

    The contended workload again, same seeds per cell; the only knob is
    :class:`~repro.harness.Scenario`'s ``codec``.  Binary keeps consensus
    payloads opaque through the hub (zero-decode relay) and struct-packs
    the control plane, so the cell reports both the rate (hub messages per
    wall second) and the size (hub bytes per frame) axes.
    """
    inputs = split(1, 2, n, n // 2)
    cells: dict[str, dict[str, Any]] = {}
    for codec in ("pickle", "binary"):
        frames = 0
        hub_bytes = 0
        delivered = 0
        wall = 0.0
        for seed in range(1, runs + 1):
            scenario = Scenario(dex_freq(), inputs, seed=seed, codec=codec)
            result = scenario.run_net(timeout=timeout)
            frames += result.hub_frames
            hub_bytes += result.hub_bytes
            delivered += result.stats.messages_delivered
            wall += result.wall_seconds
        cells[codec] = {
            "runs": runs,
            "hub_frames": frames,
            "hub_bytes": hub_bytes,
            "messages_delivered": delivered,
            "wall_seconds": round(wall, 4),
            "hub_msgs_per_s": round(delivered / wall, 1) if wall else 0.0,
            "bytes_per_frame": round(hub_bytes / frames, 1) if frames else 0.0,
        }
    pickle_rate = cells["pickle"]["hub_msgs_per_s"]
    binary_bpf = cells["binary"]["bytes_per_frame"]
    cells["binary_vs_pickle"] = {
        "msgs_per_s_speedup": (
            round(cells["binary"]["hub_msgs_per_s"] / pickle_rate, 2)
            if pickle_rate
            else None
        ),
        "bytes_per_frame_ratio": (
            round(cells["pickle"]["bytes_per_frame"] / binary_bpf, 2)
            if binary_bpf
            else None
        ),
    }
    return cells


def run_net_bench(
    n: int = 7, runs: int = 10, timeout: float = 20.0
) -> dict[str, Any]:
    """Fast-path rate + throughput/latency: real sockets vs the simulator.

    Every run streams its events into a fresh
    :class:`~repro.engine.events.EventStats` sink; per-engine
    :class:`~repro.metrics.collectors.StreamAggregate` collectors fold the
    counters, so the bench holds O(workloads × engines) state no matter
    how many messages cross the wire.
    """
    from .collectors import StreamAggregate

    workloads = []
    for name, make_inputs in NET_WORKLOADS:
        inputs = make_inputs(n)
        aggregates = {
            engine: StreamAggregate(label=f"{name}/{engine}")
            for engine in ("sim", "net")
        }
        for engine, aggregate in aggregates.items():
            for seed in range(1, runs + 1):
                stats = aggregate.new_sink()
                scenario = Scenario(
                    dex_freq(), inputs, seed=seed, engine=engine, event_sink=stats
                )
                if engine == "net":
                    result = scenario.run_net(timeout=timeout)
                else:
                    result = scenario.run()
                aggregate.add_stats(
                    stats,
                    wall_seconds=getattr(result, "wall_seconds", None),
                    timed_out=getattr(result, "timed_out", False),
                )
        workloads.append(
            {
                "workload": name,
                "inputs": inputs,
                "sim": aggregates["sim"].summary(),
                "net": aggregates["net"].summary(),
            }
        )
    return {
        "benchmark": "net",
        "commit": _commit_hash(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "unix_time": time.time(),
        "n": n,
        "t": (n - 1) // 6,
        "runs_per_workload": runs,
        "workloads": workloads,
        "delivery_batching": bench_delivery_batching(
            n=n, runs=min(runs, 5), timeout=timeout
        ),
        "codec_ablation": bench_codec_ablation(
            n=n, runs=min(runs, 5), timeout=timeout
        ),
    }


def write_net_bench(
    out: pathlib.Path | str | None = None,
    n: int = 7,
    runs: int = 10,
    timeout: float = 20.0,
) -> pathlib.Path:
    """Run the socket-engine bench and persist ``BENCH_net.json``."""
    report = run_net_bench(n=n, runs=runs, timeout=timeout)
    if out is None:
        out = pathlib.Path("benchmarks") / "results" / "BENCH_net.json"
    path = pathlib.Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


# -- sharded-service bench (the E19 axis) --------------------------------------------

#: Shard counts of the scaling sweep (same command count per cell, so more
#: shards = more instances deciding concurrently in the same virtual time).
SHARD_COUNTS = (1, 2, 4)

#: Key-skew models swept per shard count (skew drives contention, and
#: contention drives the one-step rate).
SHARD_SKEWS = ("uniform", "zipf")


def _mean_numeric(rows: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Field-wise mean of the numeric entries of same-shaped dicts."""
    if not rows:
        return {}
    out: dict[str, Any] = {}
    for key, value in rows[0].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            out[key] = value
            continue
        out[key] = round(sum(float(r[key]) for r in rows) / len(rows), 4)
    return out


def run_shard_bench(
    n: int = 7,
    shards: Sequence[int] = SHARD_COUNTS,
    count: int = 48,
    runs: int = 3,
    contention: float = 0.3,
    timeout: float = 30.0,
    net_shards: Sequence[int] | None = (1, 2),
    net_count: int = 12,
    net_runs: int = 1,
) -> dict[str, Any]:
    """The E19 sweep: sharded-service throughput/latency/one-step rate.

    Per cell (engine × skew × shard count) the same seeded client stream
    runs through :class:`~repro.shard.service.ShardedService`; cell rows
    are field-wise means over ``runs`` seeds of the per-shard and
    aggregate summaries the shard metrics fold from the event stream.
    ``scaling`` extracts the headline: aggregate commands-per-time versus
    shard count, per skew, on the simulator (virtual time) and — for the
    smaller net sweep — wall time.

    Args:
        n: replica count (t is the frequency pair's max).
        shards: shard counts of the simulator sweep.
        count: commands per simulator run.
        runs: seeds per simulator cell.
        contention: per-slot contention probability of the sweep.
        timeout: per-run deadline (net cells).
        net_shards: shard counts of the socket-engine sweep (``None`` or
            empty = skip the net cells entirely).
        net_count, net_runs: the net sweep's smaller stream and seed count.
    """
    from ..shard.service import ShardedService

    cells: list[dict[str, Any]] = []
    scaling: dict[str, dict[str, dict[str, float]]] = {}

    def sweep(engine: str, sweep_shards: Sequence[int], sweep_count: int,
              sweep_runs: int) -> None:
        for skew in SHARD_SKEWS:
            for shard_count in sweep_shards:
                reports = []
                for seed in range(1, sweep_runs + 1):
                    service = ShardedService(
                        n=n,
                        shards=shard_count,
                        contention=contention,
                        skew=skew,
                        seed=seed,
                        engine=engine,
                    )
                    reports.append(service.run(count=sweep_count, timeout=timeout))
                divergences = sum(1 for r in reports if r.divergence)
                aggregate = _mean_numeric([r.aggregate for r in reports])
                per_shard = [
                    _mean_numeric([r.per_shard[s] for r in reports])
                    for s in range(shard_count)
                ]
                cells.append(
                    {
                        "engine": engine,
                        "skew": skew,
                        "shards": shard_count,
                        "count": sweep_count,
                        "runs": sweep_runs,
                        "divergences": divergences,
                        "aggregate": aggregate,
                        "per_shard": per_shard,
                    }
                )
                scaling.setdefault(engine, {}).setdefault(skew, {})[
                    str(shard_count)
                ] = aggregate.get("throughput_cmds", 0.0)

    sweep("sim", shards, count, runs)
    if net_shards:
        sweep("net", net_shards, net_count, net_runs)
    return {
        "benchmark": "shard",
        "commit": _commit_hash(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "unix_time": time.time(),
        "n": n,
        "t": max((n - 1) // 6, 0),
        "contention": contention,
        "cells": cells,
        "scaling": scaling,
    }


def write_shard_bench(
    out: pathlib.Path | str | None = None,
    n: int = 7,
    shards: Sequence[int] = SHARD_COUNTS,
    count: int = 48,
    runs: int = 3,
    smoke: bool = False,
) -> pathlib.Path:
    """Run the sharded-service bench and persist ``BENCH_shard.json``.

    ``smoke`` shrinks everything (shards 1–2, short stream, one seed, sim
    plus one tiny net cell) to CI scale.
    """
    if smoke:
        report = run_shard_bench(
            n=n, shards=(1, 2), count=12, runs=1,
            net_shards=(2,), net_count=8, net_runs=1,
        )
    else:
        report = run_shard_bench(n=n, shards=shards, count=count, runs=runs)
    if out is None:
        out = pathlib.Path("benchmarks") / "results" / "BENCH_shard.json"
    path = pathlib.Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


# -- mesh bench (the E23 axis) --------------------------------------------------------

#: Hub-group counts of the mesh ablation.  One hub is the E19 baseline
#: (the star topology with its single-hub ceiling); two and four split the
#: shard space across extra hub processes.
MESH_HUB_COUNTS = (1, 2, 4)

#: Payload codecs swept per mesh cell: binary keeps shard attribution on
#: raw bytes (``peek_shard``) so data hubs never decode payloads; pickle
#: forces a decode at the owning hub and shows what that costs.
MESH_CODECS = ("binary", "pickle")


def run_mesh_bench(
    n: int = 7,
    shards: int = 4,
    hubs: Sequence[int] = MESH_HUB_COUNTS,
    count: int = 96,
    runs: int = 3,
    contention: float = 0.3,
    timeout: float = 60.0,
    codecs: Sequence[str] = MESH_CODECS,
    skews: Sequence[str] = SHARD_SKEWS,
) -> dict[str, Any]:
    """The E23 ablation: shard-workload net throughput vs hub-group count.

    Per cell (codec × skew × hub count) the same seeded client stream runs
    through :class:`~repro.shard.service.ShardedService` on the socket
    engine, with the transport shaped by
    :class:`~repro.mesh.topology.MeshTopology` — one hub is exactly the
    E19 star cluster, more hubs split the shard space across extra hub
    processes with hub-to-hub relay for stray frames.  Cells carry the
    per-hub frame/byte counters from the run results, so the report shows
    not just the throughput curve but *where* the frames went.

    ``scaling`` extracts the headline: aggregate commands per wall second
    versus hub count, per codec and skew.  The acceptance check for the
    mesh subsystem is that the uniform-key curve increases monotonically
    from one to four hubs — the reversal of E19's flat/regressing net row.
    """
    from ..mesh import MeshTopology
    from ..shard.service import ShardedService

    cells: list[dict[str, Any]] = []
    scaling: dict[str, dict[str, dict[str, float]]] = {}
    for codec in codecs:
        for skew in skews:
            for hub_count in hubs:
                reports = []
                for seed in range(1, runs + 1):
                    service = ShardedService(
                        n=n,
                        shards=shards,
                        contention=contention,
                        skew=skew,
                        seed=seed,
                        engine="net",
                        codec=codec,
                        mesh=MeshTopology(hubs=hub_count),
                    )
                    reports.append(service.run(count=count, timeout=timeout))
                divergences = sum(1 for r in reports if r.divergence)
                hub_frames: dict[str, int] = {}
                hub_bytes: dict[str, int] = {}
                hub_exits: dict[str, int] = {}
                for report in reports:
                    result = report.result
                    for hub, frames in getattr(
                        result, "hub_frame_counts", {}
                    ).items():
                        hub_frames[str(hub)] = hub_frames.get(str(hub), 0) + frames
                    for hub, nbytes in getattr(
                        result, "hub_byte_counts", {}
                    ).items():
                        hub_bytes[str(hub)] = hub_bytes.get(str(hub), 0) + nbytes
                    for hub, code in getattr(
                        result, "hub_exit_codes", {}
                    ).items():
                        hub_exits[str(hub)] = code
                aggregate = _mean_numeric([r.aggregate for r in reports])
                cells.append(
                    {
                        "codec": codec,
                        "skew": skew,
                        "hubs": hub_count,
                        "shards": shards,
                        "count": count,
                        "runs": runs,
                        "divergences": divergences,
                        "hub_frames": hub_frames,
                        "hub_bytes": hub_bytes,
                        "hub_exit_codes": hub_exits,
                        "aggregate": aggregate,
                    }
                )
                scaling.setdefault(codec, {}).setdefault(skew, {})[
                    str(hub_count)
                ] = aggregate.get("throughput_cmds", 0.0)
    return {
        "benchmark": "mesh",
        "commit": _commit_hash(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "unix_time": time.time(),
        "n": n,
        "t": max((n - 1) // 6, 0),
        "shards": shards,
        "contention": contention,
        "cells": cells,
        "scaling": scaling,
    }


def write_mesh_bench(
    out: pathlib.Path | str | None = None,
    n: int = 7,
    hubs: Sequence[int] = MESH_HUB_COUNTS,
    shards: int = 4,
    count: int = 96,
    runs: int = 3,
    smoke: bool = False,
) -> pathlib.Path:
    """Run the mesh ablation and persist ``BENCH_mesh.json``.

    ``smoke`` shrinks it (hubs 1–2, binary codec, uniform keys, a short
    stream) to CI scale.
    """
    if smoke:
        report = run_mesh_bench(
            n=n, shards=shards, hubs=(1, 2), count=8, runs=1,
            codecs=("binary",), skews=("uniform",),
        )
    else:
        report = run_mesh_bench(
            n=n, shards=shards, hubs=hubs, count=count, runs=runs
        )
    if out is None:
        out = pathlib.Path("benchmarks") / "results" / "BENCH_mesh.json"
    path = pathlib.Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


# -- recovery bench (the E20 axis) ----------------------------------------------------

#: WAL lengths (decided slots) of the replay-latency sweep.
RECOVERY_LOG_LENGTHS = (64, 256, 1024)


def run_recovery_bench(
    log_lengths: Sequence[int] = RECOVERY_LOG_LENGTHS,
    fsync_records: int = 512,
    repeats: int = 3,
    snapshot_every: int = 64,
    net_cell: bool = True,
    net_count: int = 48,
    timeout: float = 45.0,
) -> dict[str, Any]:
    """The E20 sweep: durability cost and crash-recovery latency.

    Three groups:

    * **replay** — wall-clock cost of :meth:`~repro.durable.recovery.
      NodeDurability.recover` versus WAL length, with snapshots off (full
      log replay) and on (snapshot bounds the tail) — the knob that turns
      O(history) restart into O(snapshot interval);
    * **fsync** — WAL append throughput with ``fsync`` off (flush to the
      OS) versus on (force to the platter), the classic durability tax;
    * **net** (optional) — one seeded socket-engine run where a replica is
      SIGKILLed mid-run and relaunched: end-to-end recovery latency from
      the ``node.restart`` event to its ``recovery.caught_up``, plus the
      run's divergence verdict.
    """
    import shutil
    import tempfile

    from ..durable.recovery import DurabilityConfig
    from ..durable.wal import DecideRecord, WriteAheadLog

    def one_batch(slot: int) -> tuple:
        return (("set", f"k{slot % 8}", slot),)

    replay: list[dict[str, Any]] = []
    for length in log_lengths:
        for snap in (0, snapshot_every):
            root = tempfile.mkdtemp(prefix="repro-bench-recovery-")
            try:
                config = DurabilityConfig(root, snapshot_every=snap)
                writer = config.node(0)
                slots = {0: 0}
                applied: dict[int, list[tuple]] = {0: []}
                kv: dict[int, dict[str, int]] = {0: {}}
                for slot in range(length):
                    batch = one_batch(slot)
                    writer.commit(0, slot, batch, "one-step")
                    applied[0].append(batch)
                    kv[0][batch[0][1]] = batch[0][2]
                    slots[0] = slot + 1
                    writer.maybe_snapshot(slots, applied, kv)
                writer.close()

                def recover_once() -> None:
                    reader = config.node(0)
                    state = reader.recover(1)
                    reader.close()
                    assert state is not None and state.slots[0] == length

                seconds = _best_of(repeats, recover_once)
                probe = config.node(0)
                state = probe.recover(1)
                probe.close()
                replay.append(
                    {
                        "log_length": length,
                        "snapshot_every": snap,
                        "recover_seconds": round(seconds, 6),
                        "replayed_records": state.replayed_records,
                        "from_snapshot": state.from_snapshot,
                    }
                )
            finally:
                shutil.rmtree(root, ignore_errors=True)

    fsync_rows: list[dict[str, Any]] = []
    for fsync in (False, True):
        root = tempfile.mkdtemp(prefix="repro-bench-wal-")
        try:
            def append_all() -> None:
                wal = WriteAheadLog(
                    pathlib.Path(root) / f"wal-{fsync}.log", fsync=fsync
                )
                for slot in range(fsync_records):
                    wal.append(DecideRecord(0, slot, "one-step"))
                wal.reset()
                wal.close()

            seconds = _best_of(repeats, append_all)
            fsync_rows.append(
                {
                    "fsync": fsync,
                    "records": fsync_records,
                    "seconds": round(seconds, 6),
                    "records_per_second": round(fsync_records / seconds, 1)
                    if seconds
                    else None,
                }
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)

    net: dict[str, Any] | None = None
    if net_cell:
        from ..durable.recovery import DurabilityConfig as _Config
        from ..engine.events import EventLog, RestartEvent
        from ..engine.faults import CrashRecover
        from ..shard.service import ShardedService

        root = tempfile.mkdtemp(prefix="repro-bench-recovery-net-")
        try:
            log = EventLog()
            service = ShardedService(
                n=7,
                shards=4,
                seed=3,
                rate=8,
                engine="net",
                faults={2: CrashRecover(at=0.05, restart_after=0.3)},
                durability=_Config(root, snapshot_every=4),
                event_sink=log,
            )
            started = time.perf_counter()
            report = service.run(count=net_count, timeout=timeout)
            wall = time.perf_counter() - started
            restarted_at = caught_up_at = None
            for event in log.events:
                if isinstance(event, RestartEvent) and event.pid == 2:
                    restarted_at = event.time
                elif (
                    getattr(event, "event", None) == "recovery.caught_up"
                    and event.pid == 2
                ):
                    caught_up_at = event.time
            net = {
                "count": net_count,
                "divergence": report.divergence,
                "commands": report.commands,
                "wall_seconds": round(wall, 4),
                "restarted_at": restarted_at,
                "caught_up_at": caught_up_at,
                "recovery_seconds": (
                    round(caught_up_at - restarted_at, 4)
                    if restarted_at is not None and caught_up_at is not None
                    else None
                ),
            }
        finally:
            shutil.rmtree(root, ignore_errors=True)

    return {
        "benchmark": "recovery",
        "commit": _commit_hash(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "unix_time": time.time(),
        "replay": replay,
        "fsync": fsync_rows,
        "net": net,
    }


def write_recovery_bench(
    out: pathlib.Path | str | None = None,
    log_lengths: Sequence[int] = RECOVERY_LOG_LENGTHS,
    repeats: int = 3,
    smoke: bool = False,
) -> pathlib.Path:
    """Run the recovery bench and persist ``BENCH_recovery.json``.

    ``smoke`` shrinks it (one short log, one repeat, smaller net stream)
    to CI scale.
    """
    if smoke:
        report = run_recovery_bench(
            log_lengths=(32,), fsync_records=64, repeats=1, net_count=24
        )
    else:
        report = run_recovery_bench(log_lengths=log_lengths, repeats=repeats)
    if out is None:
        out = pathlib.Path("benchmarks") / "results" / "BENCH_recovery.json"
    path = pathlib.Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


# -- frontend bench (the E22 axis) ----------------------------------------------------

#: Offered-load sweep, as fractions of service capacity (shards × max_batch
#: commands per tick): below, at, and past the knee.
FRONTEND_LOAD_FRACTIONS = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0)


def run_frontend_bench(
    n: int = 7,
    shards: int = 2,
    max_batch: int = 4,
    ticks: int = 40,
    queue_bound: int = 32,
    policy: str = "shed",
    fractions: Sequence[float] = FRONTEND_LOAD_FRACTIONS,
    seed: int = 11,
    socket_cell: bool = True,
    socket_submits: int = 24,
    timeout: float = 30.0,
) -> dict[str, Any]:
    """The E22 sweep: the client-observed saturation curve.

    One open-loop cell per offered load (Poisson arrivals through the
    admission-controlled frontend, sim engine), each over a fresh
    service: client p50/p99 latency in slot ticks, shed rate, throughput
    against the capacity plateau, and queue high-water.  The ``knee`` is
    the largest offered load whose cell shed nothing — below it latency
    is flat and shedding zero; past it p99 goes super-linear, the shed
    rate turns positive, and throughput plateaus at capacity instead of
    collapsing (the queues bound the damage: that is what admission
    control is *for*).  A closed-loop cell at a window of one capacity's
    worth of clients shows the self-pacing comparison, and an optional
    socket cell round-trips a small session over UDS in both codecs.
    """
    from ..frontend.api import Frontend
    from ..frontend.loadgen import LoadGenerator, saturation_sweep
    from ..shard.service import ShardedService

    def make_service() -> ShardedService:
        return ShardedService(n=n, shards=shards, max_batch=max_batch, seed=3)

    capacity = shards * max_batch
    offered = [capacity * fraction for fraction in fractions]
    open_rows = saturation_sweep(
        make_service,
        offered,
        ticks=ticks,
        queue_bound=queue_bound,
        policy=policy,
        seed=seed,
        timeout=timeout,
    )
    knee = None
    for row in open_rows:
        if row["shed_rate"] == 0.0:
            knee = row["offered_per_tick"]

    closed = Frontend(make_service(), queue_bound=max(queue_bound, capacity))
    closed_report = LoadGenerator(seed=seed).closed_loop(
        closed, clients=capacity, total=ticks * capacity // 2, timeout=timeout
    )

    socket_cells: dict[str, Any] | None = None
    if socket_cell:
        import shutil
        import tempfile

        from ..codec import CODEC_BINARY, CODEC_PICKLE
        from ..frontend.socket import ClientReply, FrontendServer, SocketClient

        socket_cells = {}
        for codec_name, codec in (("binary", CODEC_BINARY), ("pickle", CODEC_PICKLE)):
            root = tempfile.mkdtemp(prefix="repro-bench-frontend-")
            try:
                path = pathlib.Path(root) / "frontend.sock"
                server = FrontendServer(
                    lambda: Frontend(make_service(), queue_bound=queue_bound),
                    path=str(path),
                    codec=codec,
                )
                thread = server.serve_once_in_thread(timeout=timeout)
                started = time.perf_counter()
                outcomes = SocketClient(
                    path=str(path), codec=codec, timeout=timeout
                ).submit_all(
                    (f"k{i % 8}", i) for i in range(socket_submits)
                )
                thread.join(timeout)
                wall = time.perf_counter() - started
                socket_cells[codec_name] = {
                    "submits": socket_submits,
                    "replies": sum(
                        1 for o in outcomes.values() if isinstance(o, ClientReply)
                    ),
                    "rejects": sum(
                        1 for o in outcomes.values() if not isinstance(o, ClientReply)
                    ),
                    "wall_seconds": round(wall, 4),
                }
            finally:
                shutil.rmtree(root, ignore_errors=True)

    return {
        "benchmark": "frontend",
        "commit": _commit_hash(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "unix_time": time.time(),
        "n": n,
        "t": max((n - 1) // 6, 0),
        "shards": shards,
        "max_batch": max_batch,
        "capacity_per_tick": capacity,
        "ticks": ticks,
        "queue_bound": queue_bound,
        "policy": policy,
        "seed": seed,
        "knee_offered_per_tick": knee,
        "open_loop": open_rows,
        "closed_loop": closed_report.summary(),
        "socket": socket_cells,
    }


def write_frontend_bench(
    out: pathlib.Path | str | None = None,
    shards: int = 2,
    ticks: int = 40,
    smoke: bool = False,
) -> pathlib.Path:
    """Run the frontend bench and persist ``BENCH_frontend.json``.

    ``smoke`` shrinks the sweep (three loads, short run, small socket
    session) to CI scale.
    """
    if smoke:
        report = run_frontend_bench(
            shards=shards,
            ticks=12,
            fractions=(0.5, 1.5, 3.0),
            socket_submits=12,
        )
    else:
        report = run_frontend_bench(shards=shards, ticks=ticks)
    if out is None:
        out = pathlib.Path("benchmarks") / "results" / "BENCH_frontend.json"
    path = pathlib.Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def write_hotpath_bench(
    out: pathlib.Path | str | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 3,
) -> pathlib.Path:
    """Run the suite and persist ``BENCH_hotpath.json``.

    Args:
        out: output path; defaults to ``benchmarks/results/BENCH_hotpath.json``
            under the current directory (created if missing).
    """
    report = run_hotpath_bench(sizes=sizes, repeats=repeats)
    if out is None:
        out = pathlib.Path("benchmarks") / "results" / "BENCH_hotpath.json"
    path = pathlib.Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
