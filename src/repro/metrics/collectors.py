"""Aggregation of run results into experiment statistics.

One :class:`RunAggregate` summarises a batch of
:class:`~repro.sim.runner.RunResult` values — decision-step distribution,
decision-kind mix, message and latency statistics — which the report layer
renders and the benchmarks assert on.

:class:`StreamAggregate` is the event-stream-native counterpart: it folds
per-run :class:`~repro.engine.events.EventStats` counters instead of
retaining ``RunResult`` objects, so aggregation works on any engine that
emits the structured event stream — including the socket engine, whose
streaming bench never materialises results it doesn't need.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass, field

from ..engine.events import EventStats
from ..sim.runner import RunResult
from ..types import DecisionKind


@dataclass
class RunAggregate:
    """Accumulated statistics over a batch of runs.

    Per-run quantities are taken over **correct processes only** (the
    paper's properties quantify over correct processes).  ``max_step`` is
    the slowest correct decider of a run — the latency the application
    observes when it waits for system-wide agreement — and ``steps`` pools
    every individual correct decision.
    """

    label: str = ""
    runs: int = 0
    steps: list[int] = field(default_factory=list)
    max_steps: list[int] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    kinds: Counter = field(default_factory=Counter)
    messages: list[int] = field(default_factory=list)
    agreement_violations: int = 0
    unanimity_violations: int = 0

    def add(self, result: RunResult, expected_value=None) -> None:
        """Fold one run in.

        Args:
            result: a finished run (all correct processes decided).
            expected_value: when set, a decision differing from it counts
                as a unanimity violation (use for unanimous inputs).
        """
        self.runs += 1
        decisions = result.correct_decisions
        self.steps.extend(d.step for d in decisions.values())
        self.max_steps.append(result.max_correct_step)
        self.times.append(result.end_time)
        self.kinds.update(d.kind for d in decisions.values())
        self.messages.append(result.stats.messages_sent)
        if not result.agreement_holds():
            self.agreement_violations += 1
        if expected_value is not None and any(
            d.value != expected_value for d in decisions.values()
        ):
            self.unanimity_violations += 1

    # -- derived statistics -----------------------------------------------------------

    @property
    def mean_step(self) -> float:
        """Mean decision step over all correct decisions."""
        return statistics.fmean(self.steps) if self.steps else 0.0

    @property
    def mean_max_step(self) -> float:
        """Mean per-run slowest correct decision step."""
        return statistics.fmean(self.max_steps) if self.max_steps else 0.0

    @property
    def worst_step(self) -> int:
        """The worst decision step observed anywhere."""
        return max(self.steps, default=0)

    @property
    def mean_messages(self) -> float:
        return statistics.fmean(self.messages) if self.messages else 0.0

    @property
    def mean_time(self) -> float:
        return statistics.fmean(self.times) if self.times else 0.0

    def step_percentile(self, q: float) -> float:
        """The ``q``-quantile (``0 < q < 1``) of individual decision steps."""
        if not self.steps:
            return 0.0
        ordered = sorted(self.steps)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return float(ordered[index])

    def kind_fraction(self, kind: DecisionKind) -> float:
        """Fraction of correct decisions made through ``kind``."""
        total = sum(self.kinds.values())
        return self.kinds.get(kind, 0) / total if total else 0.0

    def fraction_within(self, step: int) -> float:
        """Fraction of runs whose slowest correct decision was ``<= step``."""
        if not self.max_steps:
            return 0.0
        return sum(1 for s in self.max_steps if s <= step) / len(self.max_steps)

    def step_histogram(self) -> dict[int, int]:
        """Histogram of individual decision steps."""
        return dict(sorted(Counter(self.steps).items()))

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean per-run slowest step.

        Args:
            z: critical value (1.96 ≈ 95%).

        Returns:
            ``(low, high)``; collapses to the point estimate for fewer than
            two runs.
        """
        if len(self.max_steps) < 2:
            mean = self.mean_max_step
            return (mean, mean)
        mean = self.mean_max_step
        stdev = statistics.stdev(self.max_steps)
        half = z * stdev / (len(self.max_steps) ** 0.5)
        return (mean - half, mean + half)

    def summary(self) -> dict[str, float]:
        """The headline numbers as one flat dict (for report rows)."""
        return {
            "runs": self.runs,
            "mean_step": round(self.mean_step, 3),
            "mean_max_step": round(self.mean_max_step, 3),
            "worst_step": self.worst_step,
            "p50_step": self.step_percentile(0.50),
            "p99_step": self.step_percentile(0.99),
            "one_step_frac": round(self.kind_fraction(DecisionKind.ONE_STEP), 3),
            "two_step_frac": round(self.kind_fraction(DecisionKind.TWO_STEP), 3),
            "fast_frac": round(self.kind_fraction(DecisionKind.FAST), 3),
            "underlying_frac": round(self.kind_fraction(DecisionKind.UNDERLYING), 3),
            "mean_messages": round(self.mean_messages, 1),
            "agreement_violations": self.agreement_violations,
            "unanimity_violations": self.unanimity_violations,
        }


@dataclass
class StreamAggregate:
    """Aggregation over per-run event-stream counters.

    Where :class:`RunAggregate` folds finished ``RunResult`` objects, this
    collector folds the :class:`~repro.engine.events.EventStats` a run's
    event sink computed online: attach a fresh stats sink per run
    (:meth:`new_sink`), then :meth:`add_stats` it.  Nothing per-message is
    retained — only counters and the per-decision step/kind tallies — so
    a long streaming sweep costs O(runs) memory regardless of traffic.
    """

    label: str = ""
    runs: int = 0
    sends: int = 0
    delivers: int = 0
    service_calls: int = 0
    steps: list[int] = field(default_factory=list)
    max_steps: list[int] = field(default_factory=list)
    kinds: Counter = field(default_factory=Counter)
    wall_times: list[float] = field(default_factory=list)
    decision_latencies: list[float] = field(default_factory=list)
    timeouts: int = 0

    @staticmethod
    def new_sink() -> EventStats:
        """A fresh per-run stats sink (pass as a scenario's event sink)."""
        return EventStats()

    def add_stats(
        self,
        stats: EventStats,
        wall_seconds: float | None = None,
        timed_out: bool = False,
    ) -> None:
        """Fold one run's online counters in.

        Args:
            stats: the run's :class:`EventStats` sink, after the run.
            wall_seconds: the run's wall-clock duration, when the engine
                measures one (feeds throughput/latency).
            timed_out: whether the run hit its deadline.
        """
        self.runs += 1
        self.sends += stats.sends
        self.delivers += stats.delivers
        self.service_calls += stats.service_calls
        self.steps.extend(stats.decide_steps.values())
        if stats.decide_steps:
            self.max_steps.append(max(stats.decide_steps.values()))
        self.kinds.update(stats.decide_kinds)
        if wall_seconds is not None:
            self.wall_times.append(wall_seconds)
        self.decision_latencies.extend(stats.decide_times.values())
        if timed_out:
            self.timeouts += 1

    # -- derived statistics -----------------------------------------------------------

    @property
    def mean_step(self) -> float:
        return statistics.fmean(self.steps) if self.steps else 0.0

    @property
    def mean_max_step(self) -> float:
        return statistics.fmean(self.max_steps) if self.max_steps else 0.0

    @property
    def one_step_fraction(self) -> float:
        """Fraction of decisions made within one communication step."""
        if not self.steps:
            return 0.0
        return sum(1 for s in self.steps if s <= 1) / len(self.steps)

    def kind_fraction(self, kind: DecisionKind) -> float:
        total = sum(self.kinds.values())
        return self.kinds.get(kind, 0) / total if total else 0.0

    @property
    def mean_wall_seconds(self) -> float:
        return statistics.fmean(self.wall_times) if self.wall_times else 0.0

    @property
    def throughput(self) -> float:
        """Delivered messages per wall-clock second (0 without timings)."""
        total = sum(self.wall_times)
        return self.delivers / total if total else 0.0

    def latency_percentile(self, q: float) -> float:
        """The ``q``-quantile of per-decision latencies (event times)."""
        if not self.decision_latencies:
            return 0.0
        ordered = sorted(self.decision_latencies)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return float(ordered[index])

    def latency_percentile_or_none(self, q: float) -> float | None:
        """Like :meth:`latency_percentile`, but ``None`` when there are no
        samples — a shard that decided nothing (empty, or shed-only at the
        frontend) has *no* latency, and the saturation plots must render
        that as a gap rather than a fabricated 0.0."""
        if not self.decision_latencies:
            return None
        return self.latency_percentile(q)

    def summary(self) -> dict[str, float]:
        """The headline numbers as one flat dict (for report rows)."""
        return {
            "runs": self.runs,
            "sends": self.sends,
            "delivers": self.delivers,
            "service_calls": self.service_calls,
            "mean_step": round(self.mean_step, 3),
            "mean_max_step": round(self.mean_max_step, 3),
            "one_step_frac": round(self.one_step_fraction, 3),
            "two_step_frac": round(self.kind_fraction(DecisionKind.TWO_STEP), 3),
            "underlying_frac": round(self.kind_fraction(DecisionKind.UNDERLYING), 3),
            "mean_wall_seconds": round(self.mean_wall_seconds, 6),
            "throughput_msgs_per_s": round(self.throughput, 1),
            "p50_decision_latency_s": round(self.latency_percentile(0.50), 6),
            "p99_decision_latency_s": round(self.latency_percentile(0.99), 6),
            "timeouts": self.timeouts,
        }
