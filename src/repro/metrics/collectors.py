"""Aggregation of run results into experiment statistics.

One :class:`RunAggregate` summarises a batch of
:class:`~repro.sim.runner.RunResult` values — decision-step distribution,
decision-kind mix, message and latency statistics — which the report layer
renders and the benchmarks assert on.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass, field

from ..sim.runner import RunResult
from ..types import DecisionKind


@dataclass
class RunAggregate:
    """Accumulated statistics over a batch of runs.

    Per-run quantities are taken over **correct processes only** (the
    paper's properties quantify over correct processes).  ``max_step`` is
    the slowest correct decider of a run — the latency the application
    observes when it waits for system-wide agreement — and ``steps`` pools
    every individual correct decision.
    """

    label: str = ""
    runs: int = 0
    steps: list[int] = field(default_factory=list)
    max_steps: list[int] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    kinds: Counter = field(default_factory=Counter)
    messages: list[int] = field(default_factory=list)
    agreement_violations: int = 0
    unanimity_violations: int = 0

    def add(self, result: RunResult, expected_value=None) -> None:
        """Fold one run in.

        Args:
            result: a finished run (all correct processes decided).
            expected_value: when set, a decision differing from it counts
                as a unanimity violation (use for unanimous inputs).
        """
        self.runs += 1
        decisions = result.correct_decisions
        self.steps.extend(d.step for d in decisions.values())
        self.max_steps.append(result.max_correct_step)
        self.times.append(result.end_time)
        self.kinds.update(d.kind for d in decisions.values())
        self.messages.append(result.stats.messages_sent)
        if not result.agreement_holds():
            self.agreement_violations += 1
        if expected_value is not None and any(
            d.value != expected_value for d in decisions.values()
        ):
            self.unanimity_violations += 1

    # -- derived statistics -----------------------------------------------------------

    @property
    def mean_step(self) -> float:
        """Mean decision step over all correct decisions."""
        return statistics.fmean(self.steps) if self.steps else 0.0

    @property
    def mean_max_step(self) -> float:
        """Mean per-run slowest correct decision step."""
        return statistics.fmean(self.max_steps) if self.max_steps else 0.0

    @property
    def worst_step(self) -> int:
        """The worst decision step observed anywhere."""
        return max(self.steps, default=0)

    @property
    def mean_messages(self) -> float:
        return statistics.fmean(self.messages) if self.messages else 0.0

    @property
    def mean_time(self) -> float:
        return statistics.fmean(self.times) if self.times else 0.0

    def step_percentile(self, q: float) -> float:
        """The ``q``-quantile (``0 < q < 1``) of individual decision steps."""
        if not self.steps:
            return 0.0
        ordered = sorted(self.steps)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return float(ordered[index])

    def kind_fraction(self, kind: DecisionKind) -> float:
        """Fraction of correct decisions made through ``kind``."""
        total = sum(self.kinds.values())
        return self.kinds.get(kind, 0) / total if total else 0.0

    def fraction_within(self, step: int) -> float:
        """Fraction of runs whose slowest correct decision was ``<= step``."""
        if not self.max_steps:
            return 0.0
        return sum(1 for s in self.max_steps if s <= step) / len(self.max_steps)

    def step_histogram(self) -> dict[int, int]:
        """Histogram of individual decision steps."""
        return dict(sorted(Counter(self.steps).items()))

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean per-run slowest step.

        Args:
            z: critical value (1.96 ≈ 95%).

        Returns:
            ``(low, high)``; collapses to the point estimate for fewer than
            two runs.
        """
        if len(self.max_steps) < 2:
            mean = self.mean_max_step
            return (mean, mean)
        mean = self.mean_max_step
        stdev = statistics.stdev(self.max_steps)
        half = z * stdev / (len(self.max_steps) ** 0.5)
        return (mean - half, mean + half)

    def summary(self) -> dict[str, float]:
        """The headline numbers as one flat dict (for report rows)."""
        return {
            "runs": self.runs,
            "mean_step": round(self.mean_step, 3),
            "mean_max_step": round(self.mean_max_step, 3),
            "worst_step": self.worst_step,
            "p50_step": self.step_percentile(0.50),
            "p99_step": self.step_percentile(0.99),
            "one_step_frac": round(self.kind_fraction(DecisionKind.ONE_STEP), 3),
            "two_step_frac": round(self.kind_fraction(DecisionKind.TWO_STEP), 3),
            "fast_frac": round(self.kind_fraction(DecisionKind.FAST), 3),
            "underlying_frac": round(self.kind_fraction(DecisionKind.UNDERLYING), 3),
            "mean_messages": round(self.mean_messages, 1),
            "agreement_violations": self.agreement_violations,
            "unanimity_violations": self.unanimity_violations,
        }
