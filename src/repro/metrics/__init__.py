"""Run-statistics aggregation and plain-text reporting."""

from .collectors import RunAggregate
from .report import format_histogram, format_series, format_table

__all__ = ["RunAggregate", "format_table", "format_histogram", "format_series"]
