"""Motivating applications: replicated state machine (§1.1) and atomic
commitment on the privileged value (§3.4)."""

from .atomic_commit import ABORT, COMMIT, AtomicCommitCoordinator, CommitReport
from .pipeline import (
    SLOT_DECIDED_TAG,
    PipelinedReplica,
    SlotMultiplexer,
    dex_slot_factory,
    run_pipelined,
)
from .rsm import (
    Command,
    KeyValueStore,
    ReplicatedStateMachine,
    RsmReport,
    command_stream,
)

__all__ = [
    "ReplicatedStateMachine",
    "RsmReport",
    "KeyValueStore",
    "Command",
    "command_stream",
    "AtomicCommitCoordinator",
    "CommitReport",
    "COMMIT",
    "ABORT",
    "SlotMultiplexer",
    "PipelinedReplica",
    "run_pipelined",
    "dex_slot_factory",
    "SLOT_DECIDED_TAG",
]
