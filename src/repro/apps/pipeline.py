"""Pipelined repeated consensus: many DEX instances over one network.

:class:`~repro.apps.rsm.ReplicatedStateMachine` runs one simulation per
slot — simple, but it serialises slots and hides pipelining effects.  This
module multiplexes an unbounded sequence of consensus instances inside a
*single* simulation:

* :class:`SlotMultiplexer` — a composite protocol hosting one consensus
  child per slot (``slot0``, ``slot1``, …), created lazily on first use —
  including on the first *message* for a slot this process has not reached
  yet, so fast replicas never outrun slow ones' ability to participate;
* :class:`PipelinedReplica` — a replica that keeps a window of ``W`` slots
  in flight: slot ``k + W`` is proposed as soon as slot ``k`` decides.
  With ``W = 1`` this is sequential repeated consensus; larger windows
  overlap instances exactly like a production replicated log does.

The per-slot decisions surface as ``Deliver(tag="slot-decided",
value=(slot, value, kind))`` runner outputs (timestamped in the trace),
and the replica emits its single ``Decide`` when the whole log is ordered,
which is the run's stop condition.  :func:`run_pipelined` wires a full
deployment and checks that all correct replicas ordered the *same log*.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..conditions.frequency import FrequencyPair
from ..core.dex import DexConsensus
from ..errors import ConfigurationError
from ..runtime.composite import CompositeProtocol, Envelope
from ..runtime.effects import Decide, Deliver, Effect
from ..runtime.protocol import Protocol
from ..sim.runner import RunResult, Simulation
from ..types import DecisionKind, ProcessId, SystemConfig, Value
from ..underlying.oracle import OracleConsensus, OracleService

SLOT_DECIDED_TAG = "slot-decided"

#: builds the consensus instance for one slot: ``(slot, proposal) -> Protocol``.
InstanceFactory = Callable[[int, Value], Protocol]


class SlotMultiplexer(CompositeProtocol):
    """Hosts one consensus child per slot, created lazily.

    Children are named ``slot<k>``.  A child can come into existence two
    ways: locally via :meth:`propose`, or remotely when the first envelope
    for an unseen slot arrives — in that case the instance is created
    *without* proposing (its ``on_start`` runs only when this process
    proposes), which is exactly how a lagging replica participates in a
    round it has not reached.
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        make_instance: InstanceFactory,
        max_slots: int = 10_000,
    ) -> None:
        super().__init__(process_id, config)
        self._make_instance = make_instance
        self._max_slots = max_slots
        self._proposed: set[int] = set()
        self.decided: dict[int, tuple[Value, DecisionKind]] = {}

    # -- slot management -----------------------------------------------------------

    def _slot_of(self, component: str) -> int | None:
        if not component.startswith("slot"):
            return None
        try:
            slot = int(component[4:])
        except ValueError:
            return None
        if not 0 <= slot < self._max_slots:
            return None  # Byzantine slot-number inflation guard
        return slot

    def _ensure(self, slot: int) -> Protocol:
        name = f"slot{slot}"
        if name not in self._children:
            self.add_child(name, self._make_instance(slot, None))
        return self.child(name)

    def propose(self, slot: int, value: Value) -> list[Effect]:
        """Start this process's participation in ``slot`` with ``value``."""
        if slot in self._proposed:
            return []
        self._proposed.add(slot)
        name = f"slot{slot}"
        if name in self._children:
            node = self.child(name)
            node.proposal = value  # created lazily by a remote message
        else:
            node = self.add_child(name, self._make_instance(slot, value))
        return self.child_call(name, node.on_start())

    # -- routing ---------------------------------------------------------------------

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if isinstance(payload, Envelope):
            slot = self._slot_of(payload.component)
            if slot is not None:
                self._ensure(slot)
        return super().on_message(sender, payload)

    def on_child_output(self, name: str, effect: Effect) -> list[Effect]:
        slot = self._slot_of(name)
        if slot is None or not isinstance(effect, Decide):
            return []
        if slot in self.decided:
            return []
        self.decided[slot] = (effect.value, effect.kind)
        return [Deliver(SLOT_DECIDED_TAG, self.process_id, (slot, effect.value, effect.kind))]


class PipelinedReplica(CompositeProtocol):
    """A log replica keeping ``window`` consensus slots in flight.

    Args:
        process_id: replica id.
        config: system parameters.
        proposals: this replica's proposal per slot (the workload).
        make_instance: per-slot consensus factory.
        window: number of concurrently open slots (``>= 1``).
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        proposals: Sequence[Value],
        make_instance: InstanceFactory,
        window: int = 4,
    ) -> None:
        if window < 1:
            raise ConfigurationError("window must be at least 1")
        if not proposals:
            raise ConfigurationError("need at least one slot proposal")
        super().__init__(process_id, config)
        self.proposals = list(proposals)
        self.window = window
        self._mux = self.add_child(
            "mux", SlotMultiplexer(process_id, config, make_instance)
        )
        self._next_slot = 0
        self.log: dict[int, Value] = {}
        self._done = False

    @property
    def total_slots(self) -> int:
        return len(self.proposals)

    def _open_slots(self) -> list[Effect]:
        """Propose until ``window`` slots are in flight (or none remain)."""
        effects: list[Effect] = []
        while (
            self._next_slot < self.total_slots
            and self._next_slot - len(self.log) < self.window
        ):
            slot = self._next_slot
            self._next_slot += 1
            effects.extend(
                self.child_call("mux", self._mux.propose(slot, self.proposals[slot]))
            )
        return effects

    def on_start(self) -> list[Effect]:
        return self._open_slots()

    def on_child_output(self, name: str, effect: Effect) -> list[Effect]:
        if not (isinstance(effect, Deliver) and effect.tag == SLOT_DECIDED_TAG):
            return []
        slot, value, kind = effect.value
        self.log[slot] = value
        effects: list[Effect] = [effect]  # re-surface for the runner's records
        effects.extend(self._open_slots())
        if len(self.log) == self.total_slots and not self._done:
            self._done = True
            ordered = tuple(self.log[s] for s in range(self.total_slots))
            effects.append(Decide(ordered, DecisionKind.UNDERLYING))
        return effects


def dex_slot_factory(
    process_id: ProcessId, config: SystemConfig
) -> InstanceFactory:
    """Per-slot DEX instances (frequency pair) over the shared oracle UC.

    Each slot uses its own oracle-UC instance key, so one
    :class:`~repro.underlying.oracle.OracleService` serves the whole log.
    """
    pair = FrequencyPair(config.n, config.t)

    def make(slot: int, proposal: Value) -> Protocol:
        return DexConsensus(
            process_id,
            config,
            pair,
            proposal,
            uc_factory=lambda pid, cfg, slot=slot: OracleConsensus(
                pid, cfg, instance=slot
            ),
        )

    return make


def run_pipelined(
    proposals: Mapping[ProcessId, Sequence[Value]] | Sequence[Sequence[Value]],
    t: int | None = None,
    window: int = 4,
    seed: int = 0,
    trace: bool = True,
) -> tuple[RunResult, dict[ProcessId, tuple[Value, ...]]]:
    """Run a pipelined DEX log end to end.

    Args:
        proposals: ``proposals[pid][slot]`` — each replica's proposal per
            slot; all replicas must have the same slot count.
        t: failure bound (default: frequency pair's maximum for this n).
        window: slots kept in flight per replica.
        seed: simulation seed.
        trace: keep the structured trace (per-slot timestamps live there).

    Returns:
        ``(run_result, logs)`` where ``logs[pid]`` is the ordered decided
        log of each replica — identical across correct replicas.
    """
    table = dict(enumerate(proposals)) if not isinstance(proposals, Mapping) else dict(proposals)
    n = len(table)
    slot_counts = {len(v) for v in table.values()}
    if len(slot_counts) != 1:
        raise ConfigurationError("all replicas need the same number of slots")
    if t is None:
        t = max((n - 1) // 6, 0)
    config = SystemConfig(n, t)
    service = OracleService(config)
    protocols = {
        pid: PipelinedReplica(
            pid, config, table[pid], dex_slot_factory(pid, config), window=window
        )
        for pid in config.processes
    }
    sim = Simulation(
        config,
        protocols,
        services={"oracle-uc": service},
        seed=seed,
        trace=trace,
    )
    result = sim.run_until_decided()
    logs = {
        pid: decision.value for pid, decision in result.correct_decisions.items()
    }
    return result, logs
