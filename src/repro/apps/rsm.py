"""Replicated state machine on repeated consensus — the §1.1 motivation.

"Consider a replicated state machine: the replicated servers need to agree
on the processing order of the update requests.  If a client broadcasts
its request to all servers and there is no contention, then all servers
propose the same request" — this module turns that story into a measurable
workload.

A :class:`ReplicatedStateMachine` orders a stream of commands through one
consensus instance per slot.  Per slot, each server proposes the command
at the head of its own pending queue; with probability ``1 − contention``
all servers saw the same head (the common case), otherwise servers are
split between concurrently submitted commands.  Decided commands are
applied to a simple key-value store; losers are re-proposed in later
slots.  The report carries exactly what the paper argues about: the
distribution of per-slot decision steps as a function of contention and
failures.

:data:`Command` and :class:`KeyValueStore` are shared vocabulary: the
sharded multi-consensus service (:mod:`repro.shard`) applies the same
commands to one store per shard, generalizing this module's single
replicated log (and its contention model) to many concurrent, batched
logs over one engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..harness import AlgorithmSpec, Fault, Scenario
from ..metrics.collectors import RunAggregate
from ..types import ProcessId

#: A state-machine command: ``("set", key, value)``.
Command = tuple[str, str, int]


@dataclass
class RsmReport:
    """Outcome of ordering a command stream."""

    slots: int
    applied: list[Command]
    state: dict[str, int]
    aggregate: RunAggregate
    divergence: bool = False

    @property
    def mean_slot_steps(self) -> float:
        """Mean slowest-replica decision step per slot (ordering latency)."""
        return self.aggregate.mean_max_step


class KeyValueStore:
    """The deterministic state machine being replicated."""

    def __init__(self) -> None:
        self.data: dict[str, int] = {}
        self.log: list[Command] = []

    def apply(self, command: Command) -> None:
        kind, key, value = command
        if kind != "set":
            raise ValueError(f"unknown command kind {kind!r}")
        self.data[key] = value
        self.log.append(command)


class ReplicatedStateMachine:
    """Order commands with repeated consensus and measure slot latency.

    Args:
        algorithm: the consensus algorithm ordering the log.
        n: number of replicas.
        t: declared failure bound (defaults to the algorithm's maximum).
        contention: probability that a slot has two concurrently submitted
            commands competing (the paper's "two or more concurrent
            update-requests for the same data object" — "not so often" in
            practice).
        faults: faulty replicas, passed through to every slot's scenario.
        seed: master seed (slot seeds derive from it).
    """

    def __init__(
        self,
        algorithm: AlgorithmSpec,
        n: int,
        t: int | None = None,
        contention: float = 0.1,
        faults: Mapping[ProcessId, Fault] | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= contention <= 1.0:
            raise ValueError("contention must be in [0, 1]")
        self.algorithm = algorithm
        self.n = n
        self.t = t
        self.contention = contention
        self.faults = dict(faults or {})
        self._rng = random.Random(seed)
        self._seed = seed

    def _slot_proposals(self, pending: list[Command]) -> list[Command]:
        """Each server's proposal for the next slot."""
        head = pending[0]
        if len(pending) >= 2 and self._rng.random() < self.contention:
            rival = pending[1]
            # Servers independently saw one of the two concurrent requests
            # first; a random majority saw ``head``.
            return [
                head if self._rng.random() < 0.5 else rival for _ in range(self.n)
            ]
        return [head] * self.n

    def run(self, commands: Sequence[Command]) -> RsmReport:
        """Order and apply ``commands``; returns the report.

        Commands are identified by value; consensus decides whole commands
        (they are hashable tuples).
        """
        pending: list[Command] = list(commands)
        store = KeyValueStore()
        aggregate = RunAggregate(label=f"rsm-{self.algorithm.name}")
        slots = 0
        divergence = False
        while pending:
            proposals = self._slot_proposals(pending)
            result = Scenario(
                self.algorithm,
                proposals,
                t=self.t,
                faults=self.faults,
                seed=self._seed + slots + 1,
            ).run()
            aggregate.add(result)
            if not result.agreement_holds():
                divergence = True
                break
            decided = result.decided_value
            store.apply(decided)
            if decided in pending:
                pending.remove(decided)
            else:
                # A Byzantine value slipped past the fast path guards; it is
                # applied (consensus validity only covers proposed values)
                # but nothing leaves the queue.
                divergence = True
            slots += 1
        return RsmReport(
            slots=slots,
            applied=list(store.log),
            state=dict(store.data),
            aggregate=aggregate,
            divergence=divergence,
        )


def command_stream(count: int, keys: Sequence[str] = ("x", "y", "z"), seed: int = 0) -> list[Command]:
    """A reproducible stream of ``set`` commands."""
    rng = random.Random(seed)
    return [
        ("set", rng.choice(list(keys)), rng.randrange(1000)) for _ in range(count)
    ]
