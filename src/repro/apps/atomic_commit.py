"""Atomic commitment on the privileged-value pair — the §3.4 motivation.

"In some practical agreement problems such as atomic commitment, a single
value (e.g. Commit) is often proposed by most of the processes."  This
module realises that setting: ``n`` transaction managers vote
``COMMIT``/``ABORT`` on each transaction and agree on the outcome through
DEX instantiated with the privileged-value pair, ``m = COMMIT``.

With a healthy workload (most participants vote commit), ``#_COMMIT``
clears ``3t + f`` and transactions commit in **one step**; as abort votes
creep in the decision degrades gracefully through the two-step and
underlying paths — the sweep the E6 bench reports.

Semantics note: this is *consensus on the outcome*, the paper's framing —
not a full non-blocking atomic commitment protocol (which additionally
requires "abort if anyone voted abort").  The report therefore tracks the
agreed outcome and its latency, plus how often a lone abort vote was
overridden (the measure of the difference between the two problems).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..harness import AlgorithmSpec, Scenario, dex_prv
from ..metrics.collectors import RunAggregate
from ..types import DecisionKind

COMMIT = "COMMIT"
ABORT = "ABORT"


@dataclass
class CommitReport:
    """Outcome of a batch of transactions."""

    transactions: int
    committed: int
    aborted: int
    one_step_commits: int
    overridden_aborts: int
    aggregate: RunAggregate

    @property
    def commit_rate(self) -> float:
        return self.committed / self.transactions if self.transactions else 0.0

    @property
    def one_step_commit_rate(self) -> float:
        return self.one_step_commits / self.transactions if self.transactions else 0.0


class AtomicCommitCoordinator:
    """Run transactions through privileged-value consensus.

    Args:
        n: number of transaction managers.
        t: failure bound (defaults to the pair's maximum, ``(n − 1) // 5``).
        vote_yes_probability: per-participant probability of voting commit.
        algorithm: override the consensus (defaults to DEX with the
            privileged-value pair, ``m = COMMIT``).
        seed: master seed.
    """

    def __init__(
        self,
        n: int,
        t: int | None = None,
        vote_yes_probability: float = 0.95,
        algorithm: AlgorithmSpec | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= vote_yes_probability <= 1.0:
            raise ValueError("vote_yes_probability must be in [0, 1]")
        self.n = n
        self.t = t
        self.p_yes = vote_yes_probability
        self.algorithm = algorithm or dex_prv(privileged=COMMIT)
        self._rng = random.Random(seed)
        self._seed = seed

    def votes(self) -> list[str]:
        """Sample one transaction's vote vector."""
        return [
            COMMIT if self._rng.random() < self.p_yes else ABORT
            for _ in range(self.n)
        ]

    def run(self, transactions: int) -> CommitReport:
        """Decide ``transactions`` independent transactions."""
        committed = aborted = one_step_commits = overridden = 0
        aggregate = RunAggregate(label=f"commit-{self.algorithm.name}")
        for tx in range(transactions):
            votes = self.votes()
            result = Scenario(
                self.algorithm, votes, t=self.t, seed=self._seed + tx + 1
            ).run()
            aggregate.add(result)
            outcome = result.decided_value
            if outcome == COMMIT:
                committed += 1
                if all(
                    d.kind is DecisionKind.ONE_STEP
                    for d in result.correct_decisions.values()
                ):
                    one_step_commits += 1
                if ABORT in votes:
                    overridden += 1
            else:
                aborted += 1
        return CommitReport(
            transactions=transactions,
            committed=committed,
            aborted=aborted,
            one_step_commits=one_step_commits,
            overridden_aborts=overridden,
            aggregate=aggregate,
        )
