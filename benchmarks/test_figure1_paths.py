"""F1 — reproduce the behavior of Figure 1 (algorithm DEX pseudocode).

Three traced executions exhibit each decision line of the pseudocode:

* line 8  — one-step decision from the plain view ``J1``;
* line 17 — two-step decision from the IDB view ``J2``;
* line 21 — adoption of the underlying consensus' decision;

and the trace confirms the guard of each line (``|J| ≥ n − t``, ``P1``/
``P2``) as well as the lines-12-15 invariant that every correct process
activates the underlying consensus exactly once.
"""

from _util import write_report

from repro.harness import Scenario, dex_freq
from repro.sim.latency import ConstantLatency
from repro.sim.scheduler import DelaySenders
from repro.types import DecisionKind
from repro.workloads.inputs import split, unanimous, with_frequency_gap


def run_three_paths():
    one = Scenario(
        dex_freq(), unanimous(1, 7), seed=0, trace=True,
        latency=ConstantLatency(1.0),
    ).run()
    two = Scenario(
        dex_freq(), with_frequency_gap(1, 2, 7, 5), seed=1, trace=True,
        latency=ConstantLatency(1.0), scheduler=DelaySenders([0], extra=50.0),
    ).run()
    fallback = Scenario(
        dex_freq(), split(1, 2, 7, 3), seed=2, trace=True,
        latency=ConstantLatency(1.0),
    ).run()
    return one, two, fallback


def test_figure1_decision_paths(benchmark):
    one, two, fallback = benchmark.pedantic(run_three_paths, rounds=1, iterations=1)

    lines = ["Figure 1 decision paths (n=7, t=1, constant latency):", ""]
    for label, result in [("line 8 (one-step)", one),
                          ("line 17 (two-step)", two),
                          ("line 21 (underlying)", fallback)]:
        kinds = sorted({d.kind.value for d in result.correct_decisions.values()})
        steps = sorted({d.step for d in result.correct_decisions.values()})
        lines.append(
            f"{label:22} decided={result.decided_value!r} kinds={kinds} steps={steps}"
        )
        for event in result.tracer.by_event("decide")[:3]:
            lines.append(f"    {event.data}")
    write_report("figure1_paths", "\n".join(lines))

    # line 8: all correct decide one-step at depth 1
    assert {d.kind for d in one.correct_decisions.values()} == {DecisionKind.ONE_STEP}
    assert {d.step for d in one.correct_decisions.values()} == {1}
    # line 17: the starved schedule forces at least the late processes
    # through the IDB path at depth 2, never deeper
    assert DecisionKind.TWO_STEP in {d.kind for d in two.correct_decisions.values()}
    assert all(d.step <= 2 for d in two.correct_decisions.values())
    # line 21: off-condition input adopts the underlying consensus at 4 steps
    assert {d.kind for d in fallback.correct_decisions.values()} == {
        DecisionKind.UNDERLYING
    }
    assert {d.step for d in fallback.correct_decisions.values()} == {4}


def test_figure1_uc_activated_exactly_once(benchmark):
    def run():
        sim = Scenario(dex_freq(), unanimous(1, 7), seed=3, trace=True).build()
        sim.run_until_decided()
        sim.run_to_quiescence()
        return sim

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    calls = [e for e in sim.tracer.events if e.event.startswith("service-call")]
    callers = [e.pid for e in calls]
    assert sorted(callers) == list(range(7))  # lines 12-15: once per process
