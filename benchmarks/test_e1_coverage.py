"""E1 — condition coverage: DEX's fast paths cover more inputs than the
agreed-proposal fast paths, and the coverage adapts to the failure count.

Regenerates the quantitative content behind §1.2's claim "the algorithm
instantiated by the frequency-based pair has more chances to decide in one
or two steps compared to the existing one-step Byzantine consensus
algorithms":

* Monte-Carlo coverage over skewed workloads (n = 13, t = 2), per actual
  failure count f = 0..t — DEX-freq, DEX-prv, BOSCO, Brasileiro;
* exact coverage over the full space V^n for n = 7, |V| = 2.

Expected shape: DEX-freq one-step ≥ BOSCO one-step at every (skew, f),
DEX two-step strictly wider than its one-step, and every curve shrinking
as f grows (adaptiveness) while BOSCO's threshold curve is f-insensitive
by construction (its guarantee already assumes the worst-case placement).
"""

from _util import write_report

from repro.analysis.coverage import baseline_coverage, exact_space_coverage, pair_coverage
from repro.conditions.frequency import FrequencyPair
from repro.conditions.generators import VectorSampler
from repro.conditions.privileged import PrivilegedPair
from repro.metrics.report import format_table
from repro.types import SystemConfig

N, T = 13, 2
SAMPLES = 2000


def coverage_sweep():
    config = SystemConfig(N, T)
    freq = FrequencyPair(N, T)
    prv = PrivilegedPair(N, T, privileged=1)
    rows = []
    for skew in (0.95, 0.9, 0.8, 0.7, 0.5):
        sampler = VectorSampler([1, 2], N, seed=int(skew * 100))
        vectors = [sampler.skewed_vector(1, skew) for _ in range(SAMPLES)]
        dex_f = pair_coverage(freq, vectors, range(T + 1))
        dex_p = pair_coverage(prv, vectors, range(T + 1))
        bosco = baseline_coverage("bosco", config, vectors, range(T + 1))
        bras = baseline_coverage("brasileiro", config, vectors, range(T + 1))
        for f in range(T + 1):
            rows.append(
                {
                    "P(favourite)": skew,
                    "f": f,
                    "dex-freq 1-step": dex_f[f].one_step,
                    "dex-freq ≤2-step": dex_f[f].two_step,
                    "dex-prv 1-step": dex_p[f].one_step,
                    "dex-prv ≤2-step": dex_p[f].two_step,
                    "bosco 1-step": bosco[f].one_step,
                    "brasileiro 1-step": bras[f].one_step,
                }
            )
    return rows


def test_e1_monte_carlo_coverage(benchmark):
    rows = benchmark.pedantic(coverage_sweep, rounds=1, iterations=1)
    write_report(
        "e1_coverage",
        format_table(
            rows,
            title=f"E1: fraction of sampled inputs with guaranteed fast decision "
            f"(n={N}, t={T}, {SAMPLES} samples/point)",
        ),
    )
    for row in rows:
        # the paper's headline comparison
        assert row["dex-freq 1-step"] >= row["bosco 1-step"]
        assert row["dex-freq ≤2-step"] >= row["dex-freq 1-step"]
        assert row["dex-prv ≤2-step"] >= row["dex-prv 1-step"]
    # adaptiveness: coverage is monotone non-increasing in f per skew
    by_skew = {}
    for row in rows:
        by_skew.setdefault(row["P(favourite)"], []).append(row)
    for skew_rows in by_skew.values():
        one_step = [r["dex-freq 1-step"] for r in sorted(skew_rows, key=lambda r: r["f"])]
        assert one_step == sorted(one_step, reverse=True)
    # the gap must be visible somewhere at moderate skew
    gaps = [r["dex-freq 1-step"] - r["bosco 1-step"] for r in rows]
    assert max(gaps) > 0.05


def test_e1_exact_small_space(benchmark):
    freq7 = FrequencyPair(7, 1)

    def run():
        return exact_space_coverage(freq7, [1, 2], range(2))

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"f": p.f, "one_step (exact)": p.one_step, "≤ two_step (exact)": p.two_step}
        for p in points
    ]
    write_report(
        "e1_exact",
        format_table(rows, title="E1 (exact): coverage over all of V^7, |V|=2, t=1"),
    )
    assert points[0].one_step > 0
    assert points[0].two_step > points[0].one_step
    assert points[1].one_step <= points[0].one_step
