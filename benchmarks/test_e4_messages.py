"""E4 — message complexity: what the double expedition costs on the wire.

DEX runs two broadcast mechanisms concurrently (plain + IDB's init/echo),
so one instance costs ``Θ(n³)`` point-to-point messages against BOSCO's
``Θ(n²)``.  The bench measures messages per consensus instance for a size
sweep, on both a fast-path workload and a fallback workload (the fallback
adds the underlying-consensus traffic for the real stack; the oracle UC is
message-free by construction, so the real-UC column is reported for n=7
separately).
"""

from _util import write_report

from repro.harness import Scenario, bosco_weak, dex_freq, twostep
from repro.metrics.report import format_table
from repro.workloads.inputs import split, unanimous


def sweep():
    rows = []
    for n in (7, 13, 19):
        for spec in (dex_freq(), bosco_weak(), twostep()):
            fast = Scenario(spec, unanimous(1, n), seed=1).run()
            contended = Scenario(spec, split(1, 2, n, n // 2), seed=2).run()
            rows.append(
                {
                    "n": n,
                    "algorithm": spec.name,
                    "msgs (unanimous)": fast.stats.messages_sent,
                    "msgs (contended)": contended.stats.messages_sent,
                    "msgs/n² (unanimous)": round(fast.stats.messages_sent / n**2, 2),
                }
            )
    return rows


def real_uc_comparison():
    rows = []
    for spec in (dex_freq(), twostep()):
        result = Scenario(spec, split(1, 2, 7, 3), uc="real", seed=3).run()
        rows.append(
            {
                "algorithm": spec.name,
                "underlying": "RBC+ABA+ACS",
                "msgs (contended, n=7)": result.stats.messages_sent,
            }
        )
    return rows


def test_e4_message_complexity(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        rows, title="E4: point-to-point messages per consensus instance (oracle UC)"
    )
    text += "\n\n" + format_table(
        real_uc_comparison(),
        title="E4b: with the real underlying stack (fallback engaged)",
    )
    write_report("e4_messages", text)

    by = {(r["n"], r["algorithm"]): r for r in rows}
    for n in (7, 13, 19):
        # DEX pays the IDB premium over BOSCO at every size…
        assert by[(n, "dex-freq")]["msgs (unanimous)"] > by[(n, "bosco-weak")]["msgs (unanimous)"]
        # …and the premium is the n³ echo term: at least n× BOSCO's n².
        assert by[(n, "dex-freq")]["msgs (unanimous)"] >= (n - 2) * by[(n, "bosco-weak")]["msgs (unanimous)"] / 2
        # two-step sends nothing itself under the oracle abstraction
        assert by[(n, "twostep")]["msgs (unanimous)"] == 0
    # growth order: dex messages scale ~n³ (ratio between n=19 and n=7 ≈ 19³/7³ ≈ 20)
    ratio = by[(19, "dex-freq")]["msgs (unanimous)"] / by[(7, "dex-freq")]["msgs (unanimous)"]
    assert 10 < ratio < 30
