"""E5 — replicated state machine ordering latency vs client contention.

The paper's §1.1 motivation made measurable: a replicated KV store orders
command streams through each algorithm; reported is the mean per-slot
ordering latency (slowest replica's decision step) across a contention
sweep.  Expected shape: DEX ≈ 1 step at the "no contention" common case,
degrading gracefully; the two-step baseline flat at 2; DEX keeps its
advantage while contention stays below the condition boundary.
"""

from _util import write_report

from repro.apps.rsm import ReplicatedStateMachine, command_stream
from repro.harness import Silent, bosco_weak, dex_freq, twostep
from repro.metrics.report import format_table

N = 7
SLOTS = 12
CONTENTION = (0.0, 0.2, 0.5, 0.9)


def sweep():
    commands = command_stream(SLOTS, seed=42)
    rows = []
    for p in CONTENTION:
        for spec in (dex_freq(), bosco_weak(), twostep()):
            rsm = ReplicatedStateMachine(spec, n=N, contention=p, seed=int(p * 100))
            report = rsm.run(list(commands))
            assert not report.divergence
            rows.append(
                {
                    "contention": p,
                    "algorithm": spec.name,
                    "slots": report.slots,
                    "mean slot steps": round(report.mean_slot_steps, 3),
                    "one-step slots": round(
                        report.aggregate.fraction_within(1), 3
                    ),
                }
            )
    return rows


def faulty_replica_row():
    rsm = ReplicatedStateMachine(
        dex_freq(), n=N, contention=0.2, faults={6: Silent()}, seed=5
    )
    report = rsm.run(command_stream(SLOTS, seed=43))
    return {
        "contention": 0.2,
        "algorithm": "dex-freq (+1 silent replica)",
        "slots": report.slots,
        "mean slot steps": round(report.mean_slot_steps, 3),
        "one-step slots": round(report.aggregate.fraction_within(1), 3),
    }


def test_e5_rsm_ordering_latency(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows.append(faulty_replica_row())
    write_report(
        "e5_rsm",
        format_table(
            rows,
            title=f"E5: RSM per-slot ordering latency (n={N}, {SLOTS} commands)",
        ),
    )

    def mean(p, name):
        return next(
            r["mean slot steps"]
            for r in rows
            if r["contention"] == p and r["algorithm"] == name
        )

    assert mean(0.0, "dex-freq") == 1.0
    assert mean(0.0, "twostep") == 2.0
    assert mean(0.0, "dex-freq") < mean(0.0, "bosco-weak") or mean(0.0, "bosco-weak") == 1.0
    # under contention nobody beats their own fallback ceiling
    assert mean(0.9, "dex-freq") <= 4.0
    assert mean(0.9, "bosco-weak") <= 3.0
    assert mean(0.9, "twostep") == 2.0
    # the faulty-replica row still orders every slot
    assert rows[-1]["slots"] == SLOTS
