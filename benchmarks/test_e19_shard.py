"""E19 — sharded-service throughput scaling with shard count.

The heavy-traffic extension of E5: the keyspace is split into shards,
each shard orders its own batched log through concurrent DEX instances,
and everything multiplexes over one engine.  Reported is aggregate
applied-command throughput (commands per simulated time unit) as the
shard count grows, for a uniform and a zipf-skewed key distribution.

Expected shape: on the simulator, throughput grows with shard count —
shards drain their logs concurrently, so wall (virtual) time to apply a
fixed command stream drops.  Zipf skew scales worse than uniform: hot
keys concentrate traffic on few shards, so extra shards sit idle.  The
one-step rate stays at 1.0 in the uncontended sweep (every slot's batch
is unanimously proposed) and degrades once contention is injected.
"""

from _util import write_report

from repro.metrics.report import format_table
from repro.shard import ShardedService

N = 7
COUNT = 32
SHARDS = (1, 2, 4)


def sweep():
    rows = []
    throughput = {}
    for skew in ("uniform", "zipf"):
        for shards in SHARDS:
            report = ShardedService(
                n=N, shards=shards, skew=skew, contention=0.0, seed=19
            ).run(count=COUNT)
            assert not report.divergence
            assert report.commands == COUNT
            throughput[(skew, shards)] = report.throughput
            rows.append(
                {
                    "skew": skew,
                    "shards": shards,
                    "slots": report.slots,
                    "throughput (cmds/t)": round(report.throughput, 3),
                    "one-step rate": round(report.aggregate["one_step_frac"], 3),
                    "p99 slot latency": round(
                        report.aggregate["p99_decision_latency_s"], 3
                    ),
                }
            )
    return rows, throughput


def contended_row():
    report = ShardedService(
        n=N, shards=4, skew="uniform", contention=0.5, seed=20
    ).run(count=COUNT)
    assert not report.divergence
    return {
        "skew": "uniform (contention 0.5)",
        "shards": 4,
        "slots": report.slots,
        "throughput (cmds/t)": round(report.throughput, 3),
        "one-step rate": round(report.aggregate["one_step_frac"], 3),
        "p99 slot latency": round(report.aggregate["p99_decision_latency_s"], 3),
    }


def test_e19_shard_throughput_scaling(benchmark):
    rows, throughput = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows.append(contended_row())
    write_report(
        "e19_shard",
        format_table(
            rows,
            title=(
                f"E19: sharded-service throughput vs shard count "
                f"(n={N}, {COUNT} commands, sim engine)"
            ),
        ),
    )
    # Aggregate throughput scales with shard count on the simulator.
    for skew in ("uniform", "zipf"):
        assert throughput[(skew, 1)] < throughput[(skew, SHARDS[-1])], skew
    # Hot keys waste shards: uniform must beat zipf at the widest sweep.
    assert throughput[("uniform", 4)] > throughput[("zipf", 4)]
    # Uncontended slots all take the expedited one-step path.
    uncontended = [row for row in rows if row["skew"] in ("uniform", "zipf")]
    assert all(row["one-step rate"] == 1.0 for row in uncontended)
