"""E11 — sensitivity to the underlying consensus' cost.

The paper abstracts the underlying consensus and gives it "no guarantees
about its running time".  In practice the fallback's cost determines how
much the fast paths are worth: the slower the UC, the bigger DEX's win on
condition inputs — and the bigger its loss off-condition relative to a
UC-only design that proposes at step 0 instead of step 2.

The bench sweeps the oracle UC's step cost (2 = failure-free optimum,
larger = degraded/contended UC) over a low-contention workload and
reports mean decision steps for DEX vs the two-step baseline; the derived
column shows DEX's latency advantage factor growing with UC cost.
"""

from _util import write_report

from repro.harness import Scenario, dex_freq, twostep
from repro.metrics.collectors import RunAggregate
from repro.metrics.report import format_table
from repro.sim.latency import ConstantLatency
from repro.workloads.inputs import ContentionWorkload

N = 7
RUNS = 20
CONTENTION = 0.1


def sweep():
    rows = []
    for uc_cost in (2, 4, 8, 16):
        means = {}
        for spec in (dex_freq(), twostep()):
            workload = ContentionWorkload(
                N, favourite=1, contenders=[2, 3], p=CONTENTION, seed=uc_cost
            )
            aggregate = RunAggregate(label=spec.name)
            for seed in range(RUNS):
                result = Scenario(
                    spec,
                    workload.vector(),
                    seed=seed,
                    uc_step_cost=uc_cost,
                    latency=ConstantLatency(1.0),
                ).run()
                assert result.agreement_holds()
                aggregate.add(result)
            means[spec.name] = aggregate.mean_max_step
        rows.append(
            {
                "UC step cost": uc_cost,
                "dex-freq mean steps": round(means["dex-freq"], 3),
                "twostep mean steps": round(means["twostep"], 3),
                "dex advantage ×": round(means["twostep"] / means["dex-freq"], 2),
            }
        )
    return rows


def test_e11_uc_cost_sensitivity(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(
        "e11_uc_cost",
        format_table(
            rows,
            title=f"E11: fast-path value vs underlying-consensus cost "
            f"(n={N}, contention={CONTENTION}, {RUNS} runs/point)",
        ),
    )
    # the two-step baseline pays the UC cost linearly…
    twostep_means = [r["twostep mean steps"] for r in rows]
    assert twostep_means == sorted(twostep_means)
    assert twostep_means[-1] == 16.0
    # …while DEX's fast paths shield most runs, so the advantage grows
    advantages = [r["dex advantage ×"] for r in rows]
    assert advantages == sorted(advantages)
    assert advantages[-1] > advantages[0] >= 1.0