"""E13 — the structural trade-off behind double expedition.

§1.2 explains the impossibility landscape: zero-degradation (always decide
by step 2 in stable runs) is incompatible with one-step decision, and
DEX's framework "trades the decision scheme at third step for
double-expedition property".  Structurally that means each design can only
ever decide at a characteristic set of steps:

* two-step baseline — always step 2 (zero degradation, no fast path);
* BOSCO — step 1 or step 3 (one-step, no second-step decision — the
  sacrificed step 2);
* DEX — steps 1, 2 or 4 (both fast paths, the sacrificed step 3).

The bench runs all three over a workload mix spanning every condition
band, collects the full per-decision step histogram, and asserts the
*support sets* above — the paper's impossibility discussion as measured
step distributions.
"""

from _util import write_report

from repro.harness import Scenario, bosco_weak, dex_freq, twostep
from repro.metrics.report import format_histogram
from repro.sim.latency import ConstantLatency
from repro.workloads.inputs import CorrelatedWorkload, ContentionWorkload

N = 7
RUNS_PER_WORKLOAD = 15


def step_histogram(spec):
    from collections import Counter

    histogram: Counter = Counter()
    workloads = [
        ContentionWorkload(N, p=0.0, seed=1),
        ContentionWorkload(N, p=0.3, seed=2),
        ContentionWorkload(N, p=0.8, seed=3),
        CorrelatedWorkload(N, groups=2, p=0.6, seed=4),
    ]
    for workload in workloads:
        for seed in range(RUNS_PER_WORKLOAD):
            result = Scenario(
                spec, workload.vector(), seed=seed, latency=ConstantLatency(1.0)
            ).run()
            assert result.agreement_holds()
            histogram.update(d.step for d in result.correct_decisions.values())
    return dict(sorted(histogram.items()))


def test_e13_decision_step_support(benchmark):
    def run_all():
        return {
            spec.name: step_histogram(spec)
            for spec in (dex_freq(), bosco_weak(), twostep())
        }

    histograms = benchmark.pedantic(run_all, rounds=1, iterations=1)
    parts = []
    for name, histogram in histograms.items():
        parts.append(format_histogram(histogram, title=f"{name} decision steps"))
    write_report("e13_step_structure", "\n\n".join(parts))

    # the structural support sets of §1.2's impossibility discussion
    assert set(histograms["twostep"]) == {2}
    assert set(histograms["bosco-weak"]) <= {1, 3}
    assert 3 in histograms["bosco-weak"]  # the fallback actually occurs
    assert set(histograms["dex-freq"]) <= {1, 2, 4}
    assert 2 in histograms["dex-freq"]  # the second fast path actually fires
    assert 4 in histograms["dex-freq"]  # and so does the sacrificed-3 fallback
    # nobody ever decides at the step their design sacrificed
    assert 2 not in histograms["bosco-weak"]
    assert 3 not in histograms["dex-freq"]
