#!/usr/bin/env python
"""Standalone hot-path benchmark entry point.

Runs the instance-scaling (E14 axis), predicate and coverage-enumeration
benchmarks and writes ``benchmarks/results/BENCH_hotpath.json``.  The same
suite is reachable as ``python -m repro bench``; the logic lives in
:mod:`repro.metrics.bench` so both entry points stay one-liners.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--repeats N] [--sizes 7,13,31]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.metrics.bench import DEFAULT_SIZES, write_hotpath_bench  # noqa: E402

RESULTS = pathlib.Path(__file__).parent / "results" / "BENCH_hotpath.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--sizes",
        type=lambda s: tuple(int(x) for x in s.split(",")),
        default=DEFAULT_SIZES,
        help="comma-separated instance sizes for the scaling group",
    )
    parser.add_argument("--out", type=pathlib.Path, default=RESULTS)
    args = parser.parse_args(argv)
    path = write_hotpath_bench(out=args.out, sizes=args.sizes, repeats=args.repeats)
    print(json.dumps(json.loads(path.read_text()), indent=2))
    print(f"\nwrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
