"""F2 — reproduce Figure 2: Identical Broadcast under an equivocating
sender.

The figure's scenario: processes P1, P2, P4 are correct, P3 is faulty and
sends *different* messages to P1 and P4 — yet both Id-Receive the same
message.  The bench replays this at the figure's size and larger, over
many schedules, and reports how often each face won (which face is
delivered is schedule-dependent; that it is *unique* is the guarantee).
"""

from collections import Counter

from _util import write_report

from repro.broadcast.idb import DELIVER_TAG, IdbInit, IdenticalBroadcast
from repro.metrics.report import format_table
from repro.runtime.effects import Send
from repro.runtime.protocol import Protocol
from repro.sim.runner import Simulation
from repro.types import SystemConfig


class FigureTwoByzantine(Protocol):
    """The faulty sender of Figure 2: a different message per destination
    group.  ``split(dst)`` chooses the face shown to ``dst``."""

    def __init__(self, process_id, config, split):
        super().__init__(process_id, config)
        self.split = split

    def on_start(self):
        return [
            Send(dst, IdbInit(self.split(dst))) for dst in self.config.processes
        ]

    def on_message(self, sender, payload):
        return []


def run_figure2(n: int, t: int, seeds: range, split):
    config = SystemConfig(n, t)
    byz = n - 1
    outcomes = Counter()
    for seed in seeds:
        protocols = {}
        for pid in config.processes:
            if pid == byz:
                protocols[pid] = FigureTwoByzantine(pid, config, split)
            else:
                protocols[pid] = IdenticalBroadcast(pid, config, initial_value=pid)
        result = Simulation(
            config, protocols, faulty={byz}, seed=seed
        ).run_to_quiescence()
        delivered = set()
        for pid in range(n - 1):
            for deliver in result.outputs[pid]:
                if deliver.tag == DELIVER_TAG and deliver.sender == byz:
                    delivered.add(deliver.value)
        assert len(delivered) <= 1, f"agreement broken: {delivered}"
        outcomes[next(iter(delivered)) if delivered else "(none)"] += 1
    return outcomes


def test_figure2_equivocation_agreement(benchmark):
    sizes = [(5, 1), (9, 2), (13, 3)]
    seeds = range(20)
    splits = {
        "even split": lambda dst: "A" if dst % 2 == 0 else "B",
        "majority split": lambda dst: "A" if dst != 0 else "B",
    }

    def run_all():
        return [
            (label, n, t, run_figure2(n, t, seeds, split))
            for label, split in splits.items()
            for n, t in sizes
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        {
            "attack": label,
            "n": n,
            "t": t,
            "runs": sum(outcomes.values()),
            "delivered A": outcomes.get("A", 0),
            "delivered B": outcomes.get("B", 0),
            "none accepted": outcomes.get("(none)", 0),
            "disagreements": 0,  # asserted inside run_figure2
        }
        for label, n, t, outcomes in results
    ]
    write_report(
        "figure2_idb",
        format_table(
            rows,
            title="Figure 2: equivocating sender — all correct processes "
            "Id-Receive one identical message (or none)",
        ),
    )
    # Balanced equivocation denies one face the n - t echo quorum (nothing
    # accepted — validity only covers correct senders); a lopsided split
    # gets the majority face delivered identically everywhere.  Agreement
    # (uniqueness) is asserted per run inside run_figure2.
    for label, n, t, outcomes in results:
        if label == "even split":
            assert outcomes.get("(none)", 0) == len(seeds)
        elif n - 2 >= n - t:  # the n-2 honest A-echoes reach the n-t quorum
            assert outcomes.get("A", 0) == len(seeds)
        else:  # n=5, t=1: a single dissenting init already denies the quorum
            assert outcomes.get("(none)", 0) == len(seeds)
