"""E10 — ablation: what does the double-expedition property buy?

DEX's novelty over one-step-only designs is the *concurrent two-step
scheme*.  This ablation runs the generic algorithm with the two-step
predicate disabled (``P2 ≡ False`` — the one-step scheme and the UC
pipeline are untouched) against full DEX, over a workload band where the
inputs mostly satisfy ``C²`` but not ``C¹`` (gap in ``(2t, 4t]``) — the
band the two-step scheme exists for.

Expected shape: identical behavior on one-step inputs; on the target band
the ablated variant pays the full 4-step fallback where DEX decides at 2,
roughly halving mean decision latency there.
"""

from _util import write_report

from repro.conditions.frequency import FrequencyPair
from repro.core.dex import DexConsensus
from repro.harness import AlgorithmSpec, Scenario, dex_freq
from repro.metrics.collectors import RunAggregate
from repro.metrics.report import format_table
from repro.sim.latency import ConstantLatency
from repro.types import DecisionKind
from repro.workloads.inputs import with_frequency_gap

N, T = 13, 2
RUNS = 10


class _NoTwoStepPair(FrequencyPair):
    """The frequency pair with the two-step scheme disabled.

    Deliberately violates LT2 (that is the point of the ablation); the
    agreement-side criteria LA3/LA4/LU5 still hold, so the algorithm stays
    safe — it just loses the second fast path.
    """

    def p2(self, view) -> bool:
        return False


def dex_no_two_step() -> AlgorithmSpec:
    return AlgorithmSpec(
        name="dex-no-2step",
        make=lambda pid, config, value, uc_factory: DexConsensus(
            pid, config, _NoTwoStepPair(config.n, config.t), value, uc_factory
        ),
        required_ratio=6,
    )


def sweep():
    rows = []
    for label, gap in [
        ("one-step band (gap 4t+1..)", 4 * T + 3),
        ("two-step band (gap 2t+1..4t)", 2 * T + 3),
        ("off-condition (gap <= 2t)", 1),
    ]:
        for spec in (dex_freq(), dex_no_two_step()):
            aggregate = RunAggregate(label=spec.name)
            for seed in range(RUNS):
                # Minority values at the low pids: under constant latency
                # deliveries arrive in pid order, so every quorum contains
                # all minority votes — the adversarial arrival order that
                # keeps opportunistic P1 decisions out of the 2-step band.
                inputs = list(reversed(with_frequency_gap(1, 2, N, gap)))
                result = Scenario(
                    spec, inputs, seed=seed, latency=ConstantLatency(1.0)
                ).run()
                assert result.agreement_holds()
                aggregate.add(result)
            rows.append(
                {
                    "workload": label,
                    "algorithm": spec.name,
                    "mean step": round(aggregate.mean_step, 3),
                    "worst step": aggregate.worst_step,
                    "two-step frac": round(
                        aggregate.kind_fraction(DecisionKind.TWO_STEP), 3
                    ),
                }
            )
    return rows


def test_e10_double_expedition_ablation(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(
        "e10_ablation",
        format_table(
            rows,
            title=f"E10: DEX vs DEX-without-two-step (n={N}, t={T}, "
            f"{RUNS} runs/cell, constant latency)",
        ),
    )
    by = {(r["workload"], r["algorithm"]): r for r in rows}

    one_band = "one-step band (gap 4t+1..)"
    two_band = "two-step band (gap 2t+1..4t)"
    off_band = "off-condition (gap <= 2t)"
    # identical on one-step inputs
    assert by[(one_band, "dex-freq")]["mean step"] == by[(one_band, "dex-no-2step")]["mean step"] == 1.0
    # the two-step band is where double expedition pays: 2 vs 4 steps
    assert by[(two_band, "dex-freq")]["mean step"] == 2.0
    assert by[(two_band, "dex-no-2step")]["mean step"] == 4.0
    # off-condition both fall back identically
    assert by[(off_band, "dex-freq")]["mean step"] == by[(off_band, "dex-no-2step")]["mean step"] == 4.0