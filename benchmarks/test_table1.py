"""T1 — regenerate the paper's Table 1 (performance comparison of DEX with
the existing works), with an empirical validation column.

The paper's table is analytical: per algorithm it states the system model,
failure type, resilience and one-/two-step feasibility.  This bench prints
those rows from the algorithm registry and, for every implemented row,
*measures* the claims: unanimous inputs must decide in one step, contended
inputs must still terminate with agreement, and the algorithms claiming
fault-tolerant fast paths (DEX, strong BOSCO) must keep the fast path under
``f = t`` faults.
"""

from _util import write_report

from repro.analysis.tables import dex_condition_examples, paper_table1, validated_table1
from repro.metrics.report import format_table

COLUMNS = [
    "algorithm",
    "system",
    "failures",
    "processes",
    "one_step",
    "two_step",
    "validated",
]


def test_table1_regeneration(benchmark):
    rows = benchmark.pedantic(validated_table1, rounds=1, iterations=1)
    text = format_table(rows, COLUMNS, title="Table 1: DEX vs existing works")
    text += "\n\n" + format_table(
        dex_condition_examples(13),
        title="Worked condition examples (n=13, t=2): adaptive levels per input",
    )
    write_report("table1", text)

    # Every row of the table is implemented and empirically validated —
    # including the crash-model (izumi) and synchronous (mostefaoui) rows.
    implemented = [r for r in rows if r["validated"]]
    assert len(implemented) == 7
    failures = [r for r in implemented if r["validated"] != "yes"]
    assert not failures, f"Table 1 claims not reproduced: {failures}"


def test_table1_static_rows_match_paper(benchmark):
    rows = benchmark.pedantic(paper_table1, rounds=3, iterations=1)
    by_name = {r["algorithm"]: r for r in rows}
    # Resilience column exactly as printed in the paper.
    assert by_name["brasileiro"]["processes"] == "3t+1"
    assert by_name["bosco-weak"]["processes"] == "5t+1 (Weak)"
    assert by_name["bosco-strong"]["processes"] == "7t+1 (Strong)"
    assert by_name["dex-freq"]["processes"] == "6t+1"
    # DEX is the only row with a condition-based two-step column.
    assert "Condition-Based" in by_name["dex-freq"]["two_step"]
    assert by_name["bosco-weak"]["two_step"] == "—"
