"""E2 — decision-step distributions and the contention crossover.

The paper's §1.2 trade-off: "DEX takes four steps at worst in well-behaved
runs while existing one-step algorithms take only three … it is expected to
work efficiently because the worst-case does not occur so often."

This bench measures the whole curve: mean and worst decision steps of
DEX-freq, BOSCO-weak and the plain two-step baseline across a contention
sweep.  Expected shape:

* at low contention DEX ≈ 1 step — beats both baselines;
* as contention grows DEX degrades through 2-step to its 4-step fallback,
  BOSCO to its 3-step fallback, the two-step baseline stays at 2;
* the worst cases observed are exactly 4 / 3 / 2.
"""

from _util import write_report

from repro.harness import Scenario, bosco_weak, dex_freq, twostep
from repro.metrics.collectors import RunAggregate
from repro.metrics.report import format_table
from repro.sim.latency import ConstantLatency
from repro.workloads.inputs import ContentionWorkload

N = 7
RUNS = 30
CONTENTION = (0.0, 0.1, 0.3, 0.5, 0.8)


def sweep():
    specs = [dex_freq(), bosco_weak(), twostep()]
    rows = []
    worst = {spec.name: 0 for spec in specs}
    for p in CONTENTION:
        for spec in specs:
            workload = ContentionWorkload(
                N, favourite=1, contenders=[2, 3], p=p, seed=int(p * 1000) + 7
            )
            aggregate = RunAggregate(label=spec.name)
            for run in range(RUNS):
                result = Scenario(
                    spec,
                    workload.vector(),
                    seed=run,
                    latency=ConstantLatency(1.0),
                ).run()
                aggregate.add(result)
            worst[spec.name] = max(worst[spec.name], aggregate.worst_step)
            rows.append(
                {
                    "contention": p,
                    "algorithm": spec.name,
                    "mean step": round(aggregate.mean_step, 3),
                    "mean slowest": round(aggregate.mean_max_step, 3),
                    "worst": aggregate.worst_step,
                    "1-step frac": round(aggregate.fraction_within(1), 3),
                    "≤2-step frac": round(aggregate.fraction_within(2), 3),
                }
            )
    return rows, worst


def test_e2_step_distribution_and_crossover(benchmark):
    rows, worst = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.analysis.expected_steps import crossover_contention

    q_dex = crossover_contention(N, 1, algorithm="dex")
    q_bosco = crossover_contention(N, 1, algorithm="bosco")
    text = format_table(
        rows,
        title=f"E2: decision steps vs contention (n={N}, t=1, {RUNS} runs/point, "
        "constant latency)",
    )
    text += (
        f"\n\nAnalytic worst-case crossover vs the two-step baseline "
        f"(two-value model):\n"
        f"  dex-freq beats 2 steps for P(favourite) > {q_dex:.3f}; "
        f"bosco only for P(favourite) > {q_bosco:.3f}"
    )
    write_report("e2_steps", text)
    # DEX's double expedition widens the winning region (smaller q*)
    assert q_dex < q_bosco

    def mean_at(p, name):
        return next(
            r["mean slowest"] for r in rows if r["contention"] == p and r["algorithm"] == name
        )

    # low contention: the fast paths beat the two-step optimum
    assert mean_at(0.0, "dex-freq") == 1.0
    assert mean_at(0.0, "bosco-weak") == 1.0
    assert mean_at(0.0, "twostep") == 2.0
    # high contention: the crossover — the two-step baseline beats both
    # fast-path algorithms once inputs leave the conditions
    assert mean_at(0.8, "twostep") < mean_at(0.8, "bosco-weak")
    assert mean_at(0.8, "twostep") < mean_at(0.8, "dex-freq")
    # DEX degrades later than BOSCO: at moderate contention the condition
    # still holds where BOSCO's unanimity threshold already fails
    assert mean_at(0.3, "dex-freq") < mean_at(0.3, "bosco-weak")
    # worst cases exactly as the paper states (4 / 3 / 2)
    assert worst["dex-freq"] == 4
    assert worst["bosco-weak"] == 3
    assert worst["twostep"] == 2
