"""Benchmark-suite configuration."""

import sys
import pathlib

# Make the sibling helper importable regardless of rootdir layout.
sys.path.insert(0, str(pathlib.Path(__file__).parent))
