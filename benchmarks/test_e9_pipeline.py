"""E9 — pipelined log throughput (extension).

The paper argues per-instance latency; a replicated log additionally
benefits from *pipelining* consensus instances.  This bench orders the
same 10-slot log with increasing windows of in-flight DEX instances inside
one simulation and reports makespan (simulated time), messages and the
per-slot decision-kind mix — showing that one-step decisions survive
pipelining (instances don't interfere) and that the makespan shrinks until
the window covers the log.
"""

from _util import write_report

from repro.apps.pipeline import SLOT_DECIDED_TAG, run_pipelined
from repro.metrics.report import format_table
from repro.types import DecisionKind

N = 7
SLOTS = 10


def table_with_contention():
    table = {pid: [f"c{s}" for s in range(SLOTS)] for pid in range(N)}
    for pid in range(3):
        table[pid][4] = "rival"  # one contended slot exercises the fallback
    return table


def sweep():
    rows = []
    for window in (1, 2, 4, 10):
        result, logs = run_pipelined(table_with_contention(), window=window, seed=1)
        assert len(set(logs.values())) == 1, "replicas diverged"
        kinds = [
            d.value[2]
            for pid in range(N)
            for d in result.outputs[pid]
            if d.tag == SLOT_DECIDED_TAG
        ]
        one_step = sum(1 for k in kinds if k is DecisionKind.ONE_STEP) / len(kinds)
        rows.append(
            {
                "window": window,
                "makespan (sim time)": round(result.end_time, 2),
                "messages": result.stats.messages_sent,
                "one-step slot fraction": round(one_step, 3),
            }
        )
    return rows


def test_e9_pipelined_throughput(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(
        "e9_pipeline",
        format_table(
            rows,
            title=f"E9: pipelined DEX log (n={N}, {SLOTS} slots, one contended slot)",
        ),
    )
    makespans = [r["makespan (sim time)"] for r in rows]
    # pipelining strictly helps up to the log size
    assert makespans[0] > makespans[1] > makespans[-1]
    # 9 of 10 slots are unanimous: they stay one-step at every window
    assert all(r["one-step slot fraction"] >= 0.9 for r in rows)
