"""Shared helpers for the benchmark/experiment harness.

Every bench regenerates one paper artifact (table or figure) or one
extension experiment.  Besides timing (pytest-benchmark), each bench writes
its regenerated rows/series to ``benchmarks/results/<name>.txt`` so the
artifacts survive the run and EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, text: str) -> pathlib.Path:
    """Persist one experiment's regenerated output and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
    return path
