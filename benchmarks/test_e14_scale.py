"""E14 — implementation scaling (engineering benchmark).

Wall-clock cost of simulating one DEX consensus instance as the system
grows.  Unlike E1–E13 (which regenerate paper results), this is a classic
pytest-benchmark microbenchmark: several rounds per size, so the timing
table at the end of the run shows the scaling curve of the simulator +
protocol implementation itself.  DEX's message complexity is ``Θ(n³)``
(E4), so simulation time should grow roughly cubically; the assertion only
pins correctness per round, leaving timing to the benchmark table.
"""

import pytest

from repro.harness import Scenario, dex_freq
from repro.workloads.inputs import unanimous


@pytest.mark.parametrize("n", [7, 13, 19, 31])
def test_e14_dex_instance_scaling(benchmark, n):
    counter = {"seed": 0}

    def run_once():
        counter["seed"] += 1
        result = Scenario(dex_freq(), unanimous(1, n), seed=counter["seed"]).run()
        assert result.decided_value == 1
        assert result.max_correct_step == 1
        return result

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.agreement_holds()


def test_e14_fallback_scaling(benchmark):
    """The expensive path: contended input at n=19 through the fallback."""
    from repro.workloads.inputs import split

    counter = {"seed": 0}

    def run_once():
        counter["seed"] += 1
        result = Scenario(
            dex_freq(), split(1, 2, 19, 9), seed=counter["seed"]
        ).run()
        assert result.agreement_holds()
        return result

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.all_correct_decided()
