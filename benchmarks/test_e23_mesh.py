"""E23 — parallel hub groups: breaking the socket engine's single-hub ceiling.

E19 showed the regression this experiment reverses: on the simulator the
sharded service scales with shard count, but over real sockets every frame
of every shard crossed one orchestrator process, so net throughput was
flat (51.4 → 47.7 cmds/s from 1 to 4 shards).  The mesh transport
(:mod:`repro.mesh`) splits the shard space across hub groups — hub 0 stays
the orchestrator and keeps the control plane, extra hubs are their own
processes that route only the shards they own and never materialize
payloads (attribution reads the shard straight off the frame bytes).

Reported is aggregate applied-command throughput (commands per wall
second) for the same uniform-key stream as the hub-group count grows,
plus the per-hub frame counters proving the load actually split.
"""

from _util import write_report

from repro.mesh import MeshTopology
from repro.metrics.report import format_table
from repro.shard import ShardedService

N = 7
SHARDS = 4
COUNT = 96
HUBS = (1, 2, 4)
#: Runs per hub count; the best run is reported.  Throughput on a
#: shared single-core box is noise-below, never noise-above (load can
#: only slow a run down), so max-of-k is the robust estimator here.
RUNS = 2


def sweep():
    rows = []
    throughput = {}
    frames = {}
    for hubs in HUBS:
        best = None
        for seed in range(23, 23 + RUNS):
            report = ShardedService(
                n=N,
                shards=SHARDS,
                skew="uniform",
                contention=0.0,
                seed=seed,
                engine="net",
                mesh=MeshTopology(hubs=hubs),
            ).run(count=COUNT, timeout=60.0)
            assert not report.divergence
            assert report.commands == COUNT
            result = report.result
            assert not result.timed_out
            assert set(result.exit_codes.values()) == {0}
            if best is None or report.throughput > best.throughput:
                best = report
        report, result = best, best.result
        throughput[hubs] = report.throughput
        frames[hubs] = dict(result.hub_frame_counts)
        rows.append(
            {
                "hubs": hubs,
                "slots": report.slots,
                "throughput (cmds/s)": round(report.throughput, 3),
                "one-step rate": round(report.aggregate["one_step_frac"], 3),
                "hub frames": "/".join(
                    str(result.hub_frame_counts[h])
                    for h in sorted(result.hub_frame_counts)
                ),
            }
        )
    return rows, throughput, frames


def test_e23_mesh_hub_scaling(benchmark):
    rows, throughput, frames = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(
        "e23_mesh",
        format_table(
            rows,
            title=(
                f"E23: net throughput vs hub-group count "
                f"(n={N}, {SHARDS} shards, {COUNT} commands, uniform keys)"
            ),
        ),
    )
    # The headline: more hub groups beat the single-hub star — the
    # reversal of E19's flat net row.
    assert throughput[HUBS[-1]] > throughput[1]
    # The mechanism: at 4 hubs every hub group carried node-facing frames.
    assert set(frames[4]) == {0, 1, 2, 3}
    assert all(count > 0 for count in frames[4].values())
    # The 1-hub cell is the plain star cluster: everything on hub 0.
    assert set(frames[1]) == {0}
