"""E7 — mechanical verification of Theorems 1 and 2 (legality), timed.

Re-proves the legality of both shipped condition-sequence pairs on bounded
spaces (exhaustively) and probes larger parameters by seeded Monte-Carlo,
reporting the number of property instances checked — the reproduction's
equivalent of the paper's §3 proofs.
"""

from _util import write_report

from repro.conditions.frequency import FrequencyPair
from repro.conditions.legality import LegalityChecker
from repro.conditions.privileged import PrivilegedPair
from repro.metrics.report import format_table


def run_exhaustive():
    reports = []
    for label, pair, values in [
        ("freq n=7 t=1 |V|=2", FrequencyPair(7, 1), [1, 2]),
        ("prv  n=6 t=1 |V|=2", PrivilegedPair(6, 1, privileged=1), [1, 2]),
    ]:
        report = LegalityChecker(pair, values).check_exhaustive()
        reports.append((label, "exhaustive", report))
    return reports


def run_sampled():
    reports = []
    for label, pair, values in [
        ("freq n=13 t=2 |V|=3", FrequencyPair(13, 2), [1, 2, 3]),
        ("prv  n=11 t=2 |V|=3", PrivilegedPair(11, 2, privileged=1), [1, 2, 3]),
    ]:
        report = LegalityChecker(pair, values).check_sampled(1500, seed=7)
        reports.append((label, "sampled", report))
    return reports


def test_e7_legality_verification(benchmark):
    exhaustive = benchmark.pedantic(run_exhaustive, rounds=1, iterations=1)
    sampled = run_sampled()
    rows = [
        {
            "pair": label,
            "mode": mode,
            "checks": report.checks,
            "legal": "yes" if report.is_legal else "NO",
            "first violation": report.violations[0] if report.violations else "",
        }
        for label, mode, report in exhaustive + sampled
    ]
    write_report(
        "e7_legality",
        format_table(rows, title="E7: LT1/LT2/LA3/LA4/LU5 verification (Theorems 1-2)"),
    )
    assert all(r["legal"] == "yes" for r in rows), rows
    assert all(r["checks"] > 500 for r in rows)
