"""E22 — frontend saturation curve: client latency vs offered load.

The production face of the sharded service: an open-loop Poisson client
stream pushes offered load through bounded per-shard admission queues
into the consensus core, sweeping from well below to well past the
service's capacity (``shards x max_batch`` commands per slot tick).

Expected shape — the classic saturation curve:

* below the knee, client-observed p99 is flat (a few slot ticks: batch
  formation plus one consensus round) and nothing is shed;
* past the knee, the queues fill, p99 jumps super-linearly toward the
  queueing bound (~queue_bound / max_batch extra slots of wait), and the
  shed rate climbs with offered load;
* decided throughput plateaus at capacity instead of collapsing — that
  is what admission control is *for*;
* consensus-side p99 stays flat throughout: the knee is pure queueing,
  the core never degrades.
"""

from _util import write_report

from repro.frontend import Frontend, LoadGenerator, saturation_sweep
from repro.metrics.report import format_table
from repro.shard import ShardedService

N = 7
SHARDS = 2
MAX_BATCH = 4
CAPACITY = SHARDS * MAX_BATCH  # cmds per slot tick
TICKS = 32
QUEUE_BOUND = 32
OFFERED = (2.0, 4.0, 6.0, 8.0, 12.0, 24.0)


def make_service() -> ShardedService:
    return ShardedService(n=N, shards=SHARDS, max_batch=MAX_BATCH, seed=3)


def sweep():
    return saturation_sweep(
        make_service,
        offered_loads=OFFERED,
        ticks=TICKS,
        queue_bound=QUEUE_BOUND,
        policy="shed",
        seed=22,
    )


def test_e22_frontend_saturation(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [
        {
            "offered/tick": row["offered_per_tick"],
            "decided": row["decided"],
            "shed rate": row["shed_rate"],
            "thpt (cmds/slot)": row["throughput_cmds_per_slot"],
            "client p50": row["p50_client_latency_slots"],
            "client p99": row["p99_client_latency_slots"],
            "consensus p99": round(row["consensus_p99_latency"], 3),
        }
        for row in rows
    ]
    write_report(
        "e22_frontend",
        format_table(
            table,
            title=(
                f"E22: frontend saturation (n={N}, {SHARDS} shards x "
                f"batch {MAX_BATCH} = capacity {CAPACITY}/tick, "
                f"queue bound {QUEUE_BOUND}, shed policy)"
            ),
        ),
    )
    by_load = {row["offered_per_tick"]: row for row in rows}
    assert all(row["divergence"] is False for row in rows)
    # Below the knee: nothing shed, flat low client p99.
    below = [by_load[o] for o in OFFERED if o <= 0.75 * CAPACITY]
    assert all(row["shed_rate"] == 0.0 for row in below)
    # Past the knee: shedding kicks in and grows with offered load.
    past = [by_load[o] for o in OFFERED if o > CAPACITY]
    assert all(row["shed_rate"] > 0.0 for row in past)
    sheds = [row["shed_rate"] for row in rows]
    assert sheds == sorted(sheds)  # monotone in offered load
    # Client p99 jumps super-linearly at the knee ...
    assert by_load[OFFERED[-1]]["p99_client_latency_slots"] >= (
        2 * by_load[2.0]["p99_client_latency_slots"]
    )
    # ... while the consensus core never degrades (pure queueing knee).
    consensus = [row["consensus_p99_latency"] for row in rows]
    assert max(consensus) <= 1.5 * min(consensus)
    # Decided throughput plateaus at capacity instead of collapsing.
    plateau = by_load[OFFERED[-1]]["throughput_cmds_per_slot"]
    assert plateau >= 0.8 * CAPACITY
    assert by_load[2.0]["throughput_cmds_per_slot"] < plateau


def test_e22_closed_loop_self_pacing(benchmark):
    """The backpressure counterpart: a fixed client window self-paces to
    capacity, so nothing is shed and client latency stays at the floor."""

    def run():
        frontend = Frontend(make_service(), queue_bound=2 * CAPACITY)
        return LoadGenerator(seed=23).closed_loop(
            frontend, clients=CAPACITY, total=8 * CAPACITY
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.decided == report.submitted == 8 * CAPACITY
    assert report.shed == report.dropped == 0
    assert report.latency_percentile(0.99) <= 4.0
