"""E3 — adaptiveness: the same input decides faster when fewer processes
actually fail.

The defining feature of the adaptive condition-based approach (§2.3): a
boundary input ``I ∈ C¹_k \\ C¹_{k+1}`` is guaranteed one-step decision iff
the *actual* failure count is at most ``k`` — the declared bound ``t``
plays no role on the fast path.  Non-adaptive algorithms (BOSCO) evaluate a
fixed worst-case threshold instead.

The bench fixes boundary inputs at each level ``k`` and sweeps the actual
failure count ``f``; reported is the slowest correct decision step.
"""

from _util import write_report

from repro.harness import Equivocate, Scenario, dex_freq
from repro.metrics.report import format_table
from repro.sim.latency import ConstantLatency
from repro.workloads.inputs import AdversarialBoundaryWorkload

N, T = 13, 2
SEEDS = range(5)


def sweep():
    workload = AdversarialBoundaryWorkload(N, T)
    rows = []
    for k in range(T + 1):
        inputs = workload.one_step_boundary(k)
        for f in range(T + 1):
            worst = 0
            for seed in SEEDS:
                # The adversarial pattern for a frequency-gap input: the f
                # Byzantine processes sit among the majority proposers and
                # consistently lie towards the minority value, shrinking the
                # observed gap by 2 per fault.
                faults = {pid: Equivocate(2, 2) for pid in range(f)}
                result = Scenario(
                    dex_freq(), inputs, t=T, faults=faults, seed=seed,
                    latency=ConstantLatency(1.0),
                ).run()
                worst = max(worst, result.max_correct_step)
            rows.append(
                {
                    "input level k (I ∈ C¹_k)": k,
                    "actual failures f": f,
                    "guaranteed 1-step": "yes" if f <= k else "no",
                    "worst observed step": worst,
                }
            )
    return rows


def test_e3_adaptiveness(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(
        "e3_adaptive",
        format_table(
            rows,
            title=f"E3: boundary inputs × actual failures (n={N}, t={T}, "
            "majority-side liars, worst over 5 seeds)",
        ),
    )
    for row in rows:
        if row["guaranteed 1-step"] == "yes":
            assert row["worst observed step"] == 1, row
        else:
            # outside the guarantee the run still terminates — within the
            # 4-step fallback of well-behaved runs
            assert 1 <= row["worst observed step"] <= 4
    # the adaptiveness signature: for the level-0 input, step count rises
    # with f; for the level-t input it never does
    level0 = [r for r in rows if r["input level k (I ∈ C¹_k)"] == 0]
    level_t = [r for r in rows if r["input level k (I ∈ C¹_k)"] == T]
    assert level0[0]["worst observed step"] < level0[-1]["worst observed step"]
    assert all(r["worst observed step"] == 1 for r in level_t)
