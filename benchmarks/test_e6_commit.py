"""E6 — atomic commitment on the privileged-value pair (§3.4 motivation).

Transactions are decided by DEX instantiated with ``P_prv`` and
``m = COMMIT``.  The sweep varies the per-participant yes-vote probability;
reported are commit rate, one-step commit rate and mean decision steps.
Expected shape: near-unanimous yes workloads commit in one step almost
always (``#_COMMIT > 3t``); as no-votes accumulate the coordinator slides
through two-step decisions into the fallback, and the decided outcome
flips to ABORT once commit votes lose the plurality.
"""

from _util import write_report

from repro.apps.atomic_commit import AtomicCommitCoordinator
from repro.metrics.report import format_table

N = 11
TRANSACTIONS = 25
YES_PROBABILITIES = (1.0, 0.97, 0.9, 0.75, 0.5, 0.2, 0.0)


def sweep():
    rows = []
    for p_yes in YES_PROBABILITIES:
        coordinator = AtomicCommitCoordinator(
            n=N, vote_yes_probability=p_yes, seed=int(p_yes * 1000)
        )
        report = coordinator.run(TRANSACTIONS)
        rows.append(
            {
                "P(vote yes)": p_yes,
                "commit rate": round(report.commit_rate, 3),
                "one-step commits": round(report.one_step_commit_rate, 3),
                "overridden aborts": report.overridden_aborts,
                "mean steps": round(report.aggregate.mean_max_step, 3),
                "worst steps": report.aggregate.worst_step,
            }
        )
    return rows


def test_e6_atomic_commit(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(
        "e6_commit",
        format_table(
            rows,
            title=f"E6: atomic commitment via DEX-prv, m=COMMIT "
            f"(n={N}, t=2, {TRANSACTIONS} transactions/point)",
        ),
    )
    by_p = {r["P(vote yes)"]: r for r in rows}
    # all-yes: every transaction commits in one step
    assert by_p[1.0]["commit rate"] == 1.0
    assert by_p[1.0]["one-step commits"] == 1.0
    assert by_p[1.0]["mean steps"] == 1.0
    # healthy workload: still overwhelmingly one-step
    assert by_p[0.97]["one-step commits"] >= 0.8
    # all-no: nothing commits
    assert by_p[0.0]["commit rate"] == 0.0
    # the privilege bias of F_prv: m wins whenever #_m > t, so the commit
    # rate stays well above P(majority yes) at low p_yes — but it is still
    # monotone in the vote distribution
    assert by_p[0.2]["commit rate"] < by_p[0.75]["commit rate"]
    assert by_p[0.2]["commit rate"] > 0.0  # the bias itself, visible
    # latency degrades from the fast end
    assert by_p[1.0]["mean steps"] <= by_p[0.75]["mean steps"]
