"""E8 — wall-clock latency on the asyncio runtime.

The same protocols, a real event loop, in-memory transport with ~1 ms
links: end-to-end consensus latency of DEX vs BOSCO vs the two-step
baseline on the unanimous (fast-path) and contended (fallback) workloads.
Validates that the simulator's step story translates into wall-clock
ordering: one-step < two-step < three/four-step fallbacks.
"""

import statistics

from _util import write_report

from repro.harness import Scenario, bosco_weak, dex_freq, twostep
from repro.metrics.report import format_table
from repro.workloads.inputs import split, unanimous

N = 7
RUNS = 5


def measure(spec, inputs):
    times = []
    steps = []
    for seed in range(RUNS):
        result = Scenario(spec, list(inputs), seed=seed).run_async(
            timeout=20, mean_delay=0.002
        )
        assert not result.timed_out
        assert result.agreement_holds()
        times.append(result.wall_seconds)
        steps.append(result.max_correct_step)
    return statistics.fmean(times) * 1000, max(steps)


def sweep():
    rows = []
    for spec in (dex_freq(), bosco_weak(), twostep()):
        fast_ms, fast_steps = measure(spec, unanimous(1, N))
        slow_ms, slow_steps = measure(spec, split(1, 2, N, N // 2))
        rows.append(
            {
                "algorithm": spec.name,
                "unanimous ms": round(fast_ms, 2),
                "unanimous steps": fast_steps,
                "contended ms": round(slow_ms, 2),
                "contended steps": slow_steps,
            }
        )
    return rows


def test_e8_asyncio_wall_clock(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(
        "e8_asyncio",
        format_table(
            rows,
            title=f"E8: asyncio wall-clock per consensus (n={N}, ~2 ms links, "
            f"mean of {RUNS} runs)",
        ),
    )
    by = {r["algorithm"]: r for r in rows}
    # step story carries over to the loop runtime (wall-clock numbers are
    # reported but not asserted — they depend on machine load)
    assert by["dex-freq"]["unanimous steps"] == 1
    assert by["twostep"]["unanimous steps"] == 2
    assert by["dex-freq"]["contended steps"] == 4
    assert by["bosco-weak"]["contended steps"] == 3
