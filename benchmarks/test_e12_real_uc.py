"""E12 — the real underlying stack vs the oracle abstraction (extension).

The paper's underlying consensus is an abstraction with "no guarantees
about its running time"; this repo also ships a concrete signature-free
stack (Bracha RBC + common-coin binary agreement + common subset,
``n > 3t``).  The bench quantifies what the abstraction hides: steps,
messages and simulated time of DEX's fallback path under both UC
implementations, plus the fallback behavior with a Byzantine process in
the mix.

Expected shape: identical decisions and fast-path behavior; the real
stack's fallback costs an order of magnitude more messages and
causal steps (RBC is 3 steps, each ABA round 3+, several rounds) — the
gap that motivates expediting decisions in the first place.
"""

from _util import write_report

from repro.harness import Equivocate, Scenario, dex_freq, twostep
from repro.metrics.report import format_table
from repro.workloads.inputs import split, unanimous


def run_cell(spec, inputs, uc, faults=None, seed=1):
    result = Scenario(spec, list(inputs), uc=uc, faults=faults or {}, seed=seed).run()
    assert result.agreement_holds()
    return result


def sweep():
    rows = []
    for n in (7, 13):
        contended = split(1, 2, n, n // 2)
        for uc in ("oracle", "real"):
            fast = run_cell(dex_freq(), unanimous(1, n), uc)
            slow = run_cell(dex_freq(), contended, uc)
            rows.append(
                {
                    "n": n,
                    "underlying": uc,
                    "fast-path steps": fast.max_correct_step,
                    "fallback steps": slow.max_correct_step,
                    "fallback msgs": slow.stats.messages_sent,
                    "fallback sim-time": round(slow.end_time, 1),
                }
            )
    return rows


def byzantine_row():
    inputs = split(1, 2, 7, 3)
    result = run_cell(
        dex_freq(), inputs, "real", faults={6: Equivocate(1, 2)}, seed=3
    )
    return {
        "n": 7,
        "underlying": "real (+equivocator)",
        "fast-path steps": "—",
        "fallback steps": result.max_correct_step,
        "fallback msgs": result.stats.messages_sent,
        "fallback sim-time": round(result.end_time, 1),
    }


def test_e12_real_uc_stack(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows.append(byzantine_row())
    write_report(
        "e12_real_uc",
        format_table(
            rows,
            title="E12: DEX fallback under the oracle abstraction vs the real "
            "RBC+ABA+ACS stack",
        ),
    )
    by = {(r["n"], r["underlying"]): r for r in rows}
    for n in (7, 13):
        # fast paths are untouched by the choice of UC
        assert by[(n, "oracle")]["fast-path steps"] == 1
        assert by[(n, "real")]["fast-path steps"] == 1
        # the oracle models the 2-step optimum: fallback at exactly 4
        assert by[(n, "oracle")]["fallback steps"] == 4
        # the real stack costs several times more steps and messages
        assert by[(n, "real")]["fallback steps"] >= 8
        assert (
            by[(n, "real")]["fallback msgs"]
            > 3 * by[(n, "oracle")]["fallback msgs"]
        )
