"""F3 — reproduce the appendix claim behind Figure 3 (algorithm IDB):

"a single communication step of the identical broadcast is realized by two
communication steps of standard send/receive primitives", and the protocol
costs ``O(n²)`` point-to-point messages per broadcast.

The bench measures, per system size: the causal depth of every
``Id-Receive`` (exactly 2 under fair schedules) and the total message count
for ``n`` concurrent broadcasts (``n² (n+1)`` = init ``n²`` + echo ``n³``).
"""

from _util import write_report

from repro.broadcast.idb import DELIVER_TAG, IdbEcho, IdenticalBroadcast
from repro.metrics.report import format_table
from repro.sim.latency import ConstantLatency
from repro.sim.runner import Simulation
from repro.types import SystemConfig


def run_idb(n: int, t: int):
    config = SystemConfig(n, t)
    protocols = {
        pid: IdenticalBroadcast(pid, config, initial_value=pid)
        for pid in config.processes
    }
    sim = Simulation(config, protocols, latency=ConstantLatency(1.0), trace=True)
    result = sim.run_to_quiescence()
    echo_depths = {
        e.data["depth"]
        for e in result.tracer.by_event("deliver")
        if isinstance(e.data.get("payload"), IdbEcho)
    }
    deliveries = sum(
        1 for pid in config.processes for d in result.outputs[pid] if d.tag == DELIVER_TAG
    )
    return {
        "n": n,
        "t": t,
        "plain steps per IDB step": max(echo_depths),
        "messages (n broadcasts)": result.stats.messages_sent,
        "expected n^2(n+1)": n * n * (n + 1),
        "deliveries": deliveries,
    }


def test_figure3_idb_cost(benchmark):
    sizes = [(5, 1), (9, 2), (13, 3), (17, 4)]

    def run_all():
        return [run_idb(n, t) for n, t in sizes]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_report(
        "figure3_idb_cost",
        format_table(rows, title="Figure 3 (IDB): step and message cost per size"),
    )
    for row in rows:
        assert row["plain steps per IDB step"] == 2
        assert row["messages (n broadcasts)"] == row["expected n^2(n+1)"]
        assert row["deliveries"] == row["n"] ** 2  # everyone delivers everyone
