#!/usr/bin/env python3
"""Replicated state machine ordering — the paper's §1.1 motivation.

Seven replicas of a key-value store order client commands through
consensus.  When clients rarely collide (the common case the paper argues
from), every slot is ordered in a single communication step by DEX; a
plain two-step protocol pays double on every slot.

The script sweeps the contention rate and prints the mean per-slot
ordering latency for DEX, BOSCO and the two-step baseline.

Run:  python examples/rsm_ordering.py
"""

from repro import bosco_weak, dex_freq, twostep
from repro.apps import ReplicatedStateMachine, command_stream
from repro.metrics import format_table


def main():
    print(__doc__)
    commands = command_stream(10, seed=7)
    rows = []
    for contention in (0.0, 0.1, 0.3, 0.6, 0.9):
        for spec in (dex_freq(), bosco_weak(), twostep()):
            rsm = ReplicatedStateMachine(
                spec, n=7, contention=contention, seed=int(contention * 100)
            )
            report = rsm.run(list(commands))
            assert not report.divergence, "replicas diverged!"
            rows.append(
                {
                    "contention": contention,
                    "algorithm": spec.name,
                    "mean slot steps": round(report.mean_slot_steps, 2),
                    "1-step slots": f"{report.aggregate.fraction_within(1):.0%}",
                }
            )
    print(format_table(rows, title="Per-slot ordering latency (7 replicas, 10 commands)"))
    print(
        "\nAt zero contention DEX orders every slot in one step — half the "
        "latency of the\ntwo-step optimum; the advantage shrinks as "
        "concurrent client requests increase."
    )


if __name__ == "__main__":
    main()
