#!/usr/bin/env python3
"""Instantiating the generic DEX framework with your own condition pair.

DEX (Figure 1) is generic: any *legal* condition-sequence pair plugs in.
This example defines a custom pair — a stricter frequency pair whose
one-step conditions demand a 5t gap instead of 4t (trading fast-path
coverage for slack) — and shows the full workflow a library user follows:

1. define the pair (subclass ``ConditionSequencePair``);
2. **verify legality mechanically** with ``LegalityChecker`` before
   trusting it (the checker exhaustively tests LT1/LT2/LA3/LA4/LU5 on a
   bounded space and catches unsound pairs with a counterexample);
3. run DEX instantiated with it.

The script also demonstrates the checker *rejecting* an unsound pair.

Run:  python examples/custom_pair.py
"""

from repro import Scenario, dex_freq
from repro.conditions import (
    ConditionSequence,
    ConditionSequencePair,
    FrequencyCondition,
    LegalityChecker,
)
from repro.core import DexConsensus
from repro.harness import AlgorithmSpec


class StrictFrequencyPair(ConditionSequencePair):
    """Like the paper's P_freq but with a 5t one-step margin."""

    required_ratio = 6

    def p1(self, view):
        return view.frequency_gap() > 5 * self.t

    def p2(self, view):
        return view.frequency_gap() > 2 * self.t

    def f(self, view):
        return view.first()

    def one_step_sequence(self):
        return ConditionSequence(
            [FrequencyCondition(5 * self.t + 2 * k) for k in range(self.t + 1)]
        )

    def two_step_sequence(self):
        return ConditionSequence(
            [FrequencyCondition(2 * self.t + 2 * k) for k in range(self.t + 1)]
        )


class UnsoundPair(StrictFrequencyPair):
    """P1 fires on any plurality — too weak: one-step deciders can disagree."""

    def p1(self, view):
        return view.frequency_gap() > 0


def main():
    print(__doc__)

    print("1. Checking legality of StrictFrequencyPair (n=7, t=1, |V|=2)…")
    report = LegalityChecker(StrictFrequencyPair(7, 1), [1, 2]).check_exhaustive()
    print(f"   checks={report.checks} legal={report.is_legal}")
    assert report.is_legal

    print("\n2. Checking the unsound variant — the checker must refuse it…")
    bad = LegalityChecker(UnsoundPair(7, 1), [1, 2]).check_exhaustive()
    print(f"   legal={bad.is_legal}")
    print(f"   counterexample: {bad.violations[0][:110]}…")
    assert not bad.is_legal

    print("\n3. Running DEX with the verified custom pair:")
    spec = AlgorithmSpec(
        name="dex-strict",
        make=lambda pid, config, value, uc_factory: DexConsensus(
            pid, config, StrictFrequencyPair(config.n, config.t), value, uc_factory
        ),
        required_ratio=6,
    )
    for inputs, label in [
        ([1] * 7, "unanimous        "),
        ([1, 1, 1, 1, 1, 1, 2], "gap 5 (one miss) "),
    ]:
        result = Scenario(spec, inputs, seed=1).run()
        reference = Scenario(dex_freq(), list(inputs), seed=1).run()
        kinds = sorted({d.kind.value for d in result.correct_decisions.values()})
        ref_kinds = sorted({d.kind.value for d in reference.correct_decisions.values()})
        print(f"   {label} strict-pair={kinds}  paper-pair={ref_kinds}")
    print(
        "\nThe stricter pair needs a gap > 5t for one-step decisions, so the "
        "one-miss input\nfalls through to its two-step scheme while the "
        "paper's pair still decides in one."
    )


if __name__ == "__main__":
    main()
