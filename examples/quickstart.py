#!/usr/bin/env python3
"""Quickstart: one-step Byzantine consensus with DEX in a dozen lines.

Runs DEX (frequency-based pair, n = 7, t = 1) on three inputs and shows
the doubly-expedited behavior the paper promises:

* a unanimous input decides in **one** communication step;
* a moderately skewed input decides in **two** steps (via Identical
  Broadcast) even when the schedule starves the one-step path;
* a contended input falls back to the underlying consensus (four steps),
  still safe.

Run:  python examples/quickstart.py
"""

from repro import Scenario, dex_freq
from repro.sim import ConstantLatency, DelaySenders


def show(title, result):
    kinds = sorted({d.kind.value for d in result.correct_decisions.values()})
    steps = sorted({d.step for d in result.correct_decisions.values()})
    print(f"{title:34} decided={result.decided_value!r:4} "
          f"paths={kinds} steps={steps} msgs={result.stats.messages_sent}")


def main():
    print(__doc__)

    # 1. Everyone proposes 1: the classic one-step situation.
    result = Scenario(dex_freq(), inputs=[1, 1, 1, 1, 1, 1, 1], seed=1).run()
    show("unanimous [1]*7", result)
    assert result.max_correct_step == 1

    # 2. One dissenter (gap 5 > 4t) and an adversarial schedule delaying a
    #    proposer: the one-step predicate misses, the IDB path catches it.
    result = Scenario(
        dex_freq(),
        inputs=[1, 1, 1, 1, 1, 1, 2],
        seed=2,
        latency=ConstantLatency(1.0),
        scheduler=DelaySenders([0], extra=50.0),
    ).run()
    show("gap-5 input, starved schedule", result)
    assert result.max_correct_step <= 2

    # 3. A 4-3 split leaves every condition: the underlying consensus
    #    (the paper's assumed primitive) decides at step 4.
    result = Scenario(
        dex_freq(),
        inputs=[1, 1, 1, 1, 2, 2, 2],
        seed=3,
        latency=ConstantLatency(1.0),
    ).run()
    show("contended 4-3 split", result)
    assert result.max_correct_step == 4
    print("\nAll three decision paths of Figure 1 exercised — agreement held "
          "in every run.")


if __name__ == "__main__":
    main()
