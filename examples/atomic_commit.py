#!/usr/bin/env python3
"""Atomic commitment with a privileged value — the paper's §3.4 motivation.

Eleven transaction managers vote COMMIT/ABORT; the outcome is decided by
DEX instantiated with the privileged-value pair, ``m = COMMIT``.  Because
``COMMIT`` carries the privilege, a healthy workload (almost everyone
votes yes) commits in a single communication step; the condition degrades
gracefully as no-votes appear.

The script also shows the privileged pair surviving a Byzantine
transaction manager that equivocates between COMMIT and ABORT.

Run:  python examples/atomic_commit.py
"""

from repro import Equivocate, Scenario, dex_prv
from repro.apps import COMMIT, AtomicCommitCoordinator
from repro.metrics import format_table


def main():
    print(__doc__)

    rows = []
    for p_yes in (1.0, 0.95, 0.8, 0.5):
        coordinator = AtomicCommitCoordinator(
            n=11, vote_yes_probability=p_yes, seed=int(p_yes * 100)
        )
        report = coordinator.run(20)
        rows.append(
            {
                "P(vote yes)": p_yes,
                "committed": f"{report.commit_rate:.0%}",
                "1-step commits": f"{report.one_step_commit_rate:.0%}",
                "mean steps": round(report.aggregate.mean_max_step, 2),
            }
        )
    print(format_table(rows, title="20 transactions per row, n=11, t=2"))

    print("\nByzantine transaction manager (equivocates COMMIT/ABORT):")
    votes = [COMMIT] * 10 + ["ABORT"]
    result = Scenario(
        dex_prv(privileged=COMMIT),
        votes,
        faults={10: Equivocate(COMMIT, "ABORT")},
        seed=3,
    ).run()
    kinds = sorted({d.kind.value for d in result.correct_decisions.values()})
    print(f"  outcome={result.decided_value} paths={kinds} "
          f"agreement={result.agreement_holds()}")
    assert result.decided_value == COMMIT


if __name__ == "__main__":
    main()
