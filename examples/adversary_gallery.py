#!/usr/bin/env python3
"""Adversary gallery: DEX under every attack in the library.

Runs DEX (n = 13, t = 2, both faults used) against each Byzantine behavior
— silent, mid-broadcast crash, two-faced equivocation, wire-shaped garbage
— across several seeds, and verifies the consensus properties every time.
The last section shows the Identical Broadcast sub-protocol neutralising
the Figure 2 equivocation attack on its own.

Run:  python examples/adversary_gallery.py
"""

from repro import Crash, Equivocate, Garbage, Scenario, Silent, dex_freq
from repro.broadcast import IDB_DELIVER_TAG, IdbInit, IdenticalBroadcast
from repro.metrics import format_table
from repro.runtime import Protocol, Send
from repro.sim import Simulation
from repro.types import SystemConfig

N, T = 13, 2
INPUTS = [1] * 10 + [2] * 3
ATTACKS = {
    "silent": lambda: {11: Silent(), 12: Silent()},
    "crash mid-broadcast": lambda: {11: Crash(budget=5), 12: Crash(budget=2)},
    "two-faced equivocation": lambda: {11: Equivocate(1, 2), 12: Equivocate(2, 1)},
    "garbage spray": lambda: {11: Garbage(seed=1), 12: Garbage(seed=2)},
    "mixed cocktail": lambda: {11: Equivocate(2, 2), 12: Garbage(seed=3)},
}


def main():
    print(__doc__)
    rows = []
    for name, make_faults in ATTACKS.items():
        agreements = decisions = 0
        fastest, slowest = 99, 0
        for seed in range(5):
            result = Scenario(
                dex_freq(), INPUTS, t=T, faults=make_faults(), seed=seed
            ).run()
            agreements += result.agreement_holds()
            decisions += result.all_correct_decided()
            fastest = min(fastest, min(d.step for d in result.correct_decisions.values()))
            slowest = max(slowest, result.max_correct_step)
        rows.append(
            {
                "attack": name,
                "agreement": f"{agreements}/5",
                "termination": f"{decisions}/5",
                "fastest step": fastest,
                "slowest step": slowest,
            }
        )
    print(format_table(rows, title=f"DEX-freq, n={N}, t={T}, 5 seeds per attack"))

    print("\nIdentical Broadcast vs the Figure 2 attack (n=9, p8 equivocates):")

    class FigureTwo(Protocol):
        # Seven processes are told "A", the rest "B".  The seven A-echoes
        # reach the n-t acceptance quorum, so every correct process —
        # including the one told "B" — Id-Receives "A".  (A more balanced
        # split gathers no quorum and nobody accepts anything: also a
        # correct outcome, since validity only covers correct senders.)
        def on_start(self):
            return [Send(dst, IdbInit("A" if dst < 7 else "B"))
                    for dst in self.config.processes]

        def on_message(self, sender, payload):
            return []

    config = SystemConfig(9, 2)
    protocols = {
        pid: IdenticalBroadcast(pid, config, initial_value=pid)
        for pid in range(8)
    }
    protocols[8] = FigureTwo(8, config)
    result = Simulation(config, protocols, faulty={8}, seed=1).run_to_quiescence()
    accepted = {
        pid: {d.sender: d.value for d in result.outputs[pid] if d.tag == IDB_DELIVER_TAG}.get(8)
        for pid in range(8)
    }
    print(f"  what each correct process Id-Received from the equivocator: {accepted}")
    assert set(accepted.values()) == {"A"}
    print("  -> identical at every correct process (even p7, who was told 'B'),")
    print("     exactly the guarantee Figure 2 illustrates.")


if __name__ == "__main__":
    main()
