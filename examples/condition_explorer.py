#!/usr/bin/env python3
"""Condition explorer: see the adaptive conditions of §3 at work.

For a set of input vectors (defaults below, or pass your own as
comma-separated values on the command line) the script reports, per
condition-sequence pair:

* the adaptive level ``k`` — the largest failure count for which one-step
  (``C¹_k``) and two-step (``C²_k``) decisions are guaranteed;
* what BOSCO's worst-case threshold would guarantee on the same input;
* a live simulation confirming the analysis.

Run:  python examples/condition_explorer.py
      python examples/condition_explorer.py 1,1,1,1,1,2,2,1,1,1,1,1,1
"""

import sys

from repro import Scenario, View, dex_freq
from repro.analysis import bosco_one_step_guaranteed
from repro.conditions import FrequencyPair, PrivilegedPair
from repro.metrics import format_table
from repro.types import SystemConfig

N, T = 13, 2

DEFAULTS = [
    [1] * 13,
    [1] * 12 + [2],
    [1] * 11 + [2] * 2,
    [1] * 9 + [2] * 4,
    [1] * 7 + [2] * 6,
]


def fmt(level):
    return "never" if level is None else f"f ≤ {level}"


def main():
    print(__doc__)
    if len(sys.argv) > 1:
        vectors = [[int(x) for x in sys.argv[1].split(",")]]
        if len(vectors[0]) != N:
            raise SystemExit(f"need exactly {N} comma-separated values")
    else:
        vectors = DEFAULTS

    config = SystemConfig(N, T)
    freq = FrequencyPair(N, T)
    prv = PrivilegedPair(N, T, privileged=1)
    rows = []
    for raw in vectors:
        vector = View(raw)
        rows.append(
            {
                "input (1s-2s)": f"{vector.count(1)}-{vector.count(2)}",
                "gap": vector.frequency_gap(),
                "freq 1-step": fmt(freq.one_step_level(vector)),
                "freq 2-step": fmt(freq.two_step_level(vector)),
                "prv 1-step": fmt(prv.one_step_level(vector)),
                "bosco 1-step (f=0)": (
                    "yes" if bosco_one_step_guaranteed(vector, config, 0) else "no"
                ),
            }
        )
    print(format_table(rows, title=f"Guaranteed fast decision per input (n={N}, t={T})"))

    print("\nLive check of the first input under a fault-free fair schedule:")
    result = Scenario(dex_freq(), vectors[0], t=T, seed=1).run()
    kinds = sorted({d.kind.value for d in result.correct_decisions.values()})
    print(f"  decided {result.decided_value!r} via {kinds} "
          f"at steps {sorted({d.step for d in result.correct_decisions.values()})}")


if __name__ == "__main__":
    main()
