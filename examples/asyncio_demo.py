#!/usr/bin/env python3
"""Run the same DEX protocol objects on a real asyncio event loop.

Every protocol in this library is a sans-IO state machine, so the exact
code that runs under the deterministic simulator also runs over an
in-memory asyncio transport with real ``asyncio.sleep`` link delays.  The
demo times a fast-path and a fallback consensus and shows the equivocator
being survived on the live loop.

Run:  python examples/asyncio_demo.py
"""

from repro import Equivocate, Scenario, dex_freq


def show(title, result):
    kinds = sorted({d.kind.value for d in result.correct_decisions.values()})
    print(f"{title:32} decided={result.decided_value!r:3} paths={kinds} "
          f"steps≤{result.max_correct_step} wall={result.wall_seconds * 1000:.1f} ms")


def main():
    print(__doc__)

    result = Scenario(dex_freq(), [1] * 7, seed=1).run_async(timeout=15, mean_delay=0.002)
    show("unanimous (one step)", result)
    assert result.max_correct_step == 1

    result = Scenario(dex_freq(), [1, 1, 1, 1, 2, 2, 2], seed=2).run_async(
        timeout=15, mean_delay=0.002
    )
    show("contended (fallback)", result)

    result = Scenario(
        dex_freq(), [1] * 7, faults={6: Equivocate(1, 2)}, seed=3
    ).run_async(timeout=15, mean_delay=0.002)
    show("unanimous + equivocator", result)
    assert result.agreement_holds()

    print("\nSame protocol objects, two runtimes — no protocol code changed.")


if __name__ == "__main__":
    main()
